package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	busytime "repro"
	"repro/internal/safemath"
	"repro/internal/trace"
)

// latencyBounds are the solve-latency histogram bucket upper bounds in
// seconds, spanning microsecond dispatch overhead to multi-second exact
// oracle runs.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// eventLatencyBounds bucket per-arrival stream event handling, which sits
// well under the solve-latency range: a single placement is a treap probe
// over the open machines, not a whole instance solve.
var eventLatencyBounds = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.1,
}

// phaseBounds bucket the per-phase solve breakdown, which spans
// sub-microsecond dispatch/bound spans up to multi-second placements —
// the union of the solve- and event-latency ranges.
var phaseBounds = []float64{
	0.0000001, 0.000001, 0.00001, 0.0001, 0.0005, 0.001, 0.0025,
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchSizeBounds bucket the number of requests per batch.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// flushSizeBounds bucket the arrivals per stream micro-batch flush; the
// stream batcher caps at StreamBatch (default 128).
var flushSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// transitionBounds bucket the reoptimization transition cost — the
// number of carried-over jobs a repair reassigned. Zero is its own
// bucket: an in-place repair that disturbed nothing is the common case
// worth seeing directly.
var transitionBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// streamStages are the per-arrival serving stages broken out in
// /metrics: time queued before a flush, the flush wall clock (journal
// append + fsync amortized across the batch), and the strategy's own
// placement time.
var streamStages = [...]string{"queue", "flush", "solve"}

// histogram is a fixed-bucket cumulative histogram with atomic counters,
// rendered in the Prometheus text exposition format.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64   // scaled observations (nanoseconds / raw counts)
	scale  float64        // divides sum on render (1e9 for nanoseconds)
}

func newHistogram(bounds []float64, scale float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1), scale: scale}
}

// observe records one value (already in the bounds' unit).
func (h *histogram) observe(v float64, raw int64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(raw)
}

// writeTo renders the cumulative buckets under the given metric name,
// with labels ("" or a `key="value"` list without braces) applied to
// every sample. The per-bucket counters are snapshotted first and the
// total is derived from that one snapshot, so the exposition is always
// internally consistent: buckets are monotonically non-decreasing and
// the +Inf bucket equals _count even while observations land
// concurrently. (Summing live atomics directly into the running
// cumulative could otherwise render +Inf ≠ _count — not valid
// Prometheus histogram output.)
func (h *histogram) writeTo(w io.Writer, name, labels string) {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total = safemath.SatAdd(total, counts[i])
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range h.bounds {
		cum = safemath.SatAdd(cum, counts[i])
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sum.Load())/h.scale)
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sum.Load())/h.scale)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
	}
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// histogramVec is a family of fixed-bucket histograms keyed by a
// rendered exposition label list (`algorithm="x"`, or
// `algorithm="x",phase="y"`), grown lazily on first observation so
// plugin-registered algorithms are covered without a rebuild — the same
// pattern the per-strategy stream histograms use.
type histogramVec struct {
	bounds []float64
	scale  float64
	mu     sync.RWMutex
	m      map[string]*histogram
}

func newHistogramVec(bounds []float64, scale float64) *histogramVec {
	return &histogramVec{bounds: bounds, scale: scale, m: map[string]*histogram{}}
}

func (v *histogramVec) get(labels string) *histogram {
	v.mu.RLock()
	h := v.m[labels]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		if h = v.m[labels]; h == nil {
			h = newHistogram(v.bounds, v.scale)
			v.m[labels] = h
		}
		v.mu.Unlock()
	}
	return h
}

// observe records one value under the family named by labels.
func (v *histogramVec) observe(labels string, value float64, raw int64) {
	v.get(labels).observe(value, raw)
}

// writeTo renders every labeled family in sorted label order. The
// family pointers are snapshotted before rendering so a slow scraper
// never holds the growth lock (histograms themselves are atomic and
// never removed).
func (v *histogramVec) writeTo(w io.Writer, name string) {
	type family struct {
		labels string
		h      *histogram
	}
	v.mu.RLock()
	families := make([]family, 0, len(v.m))
	for labels, h := range v.m {
		families = append(families, family{labels, h})
	}
	v.mu.RUnlock()
	sort.Slice(families, func(i, j int) bool { return families[i].labels < families[j].labels })
	for _, f := range families {
		f.h.writeTo(w, name, f.labels)
	}
}

// metrics is the daemon's plain-text counter set: request counts per
// endpoint, admission rejections, per-request error count, the in-flight
// and open-stream gauges, and latency/batch-size histograms. All fields
// are atomics (plus one mutex around the lazily-grown per-strategy map);
// the /metrics handler renders a consistent snapshot per histogram.
type metrics struct {
	requestsSolve      atomic.Int64
	requestsBatch      atomic.Int64
	requestsStream     atomic.Int64
	requestsAlgorithms atomic.Int64
	requestsHealth     atomic.Int64
	solveErrors        atomic.Int64 // per-request solve failures (single + batch items)
	rejectedOverload   atomic.Int64 // 429: in-flight cap
	rejectedTooLarge   atomic.Int64 // 413: instance or batch size cap
	badRequests        atomic.Int64 // 400: malformed wire input
	inFlight           atomic.Int64
	streamsOpen        atomic.Int64  // live /v1/stream sessions
	streamAssigned     atomic.Int64  // stream arrivals placed on a machine
	streamRejected     atomic.Int64  // stream arrivals declined by admission control
	streamErrors       atomic.Int64  // streams aborted by an in-stream error event
	streamsResumed     atomic.Int64  // sessions continued from their journal
	requestsJournal    atomic.Int64  // GET /v1/stream/journal
	batchInstances     atomic.Int64  // total requests across all batches
	reoptHits          atomic.Int64  // solves served from the fingerprint cache
	reoptRepairs       atomic.Int64  // solves warm-started and repaired from a near-hit or BaseID
	reoptMisses        atomic.Int64  // solves that ran cold and seeded the cache
	requestsTraces     atomic.Int64  // GET /debug/traces
	solveLatency       *histogramVec // per algorithm ("error" for failed solves)
	batchLatency       *histogramVec // per pinned batch algorithm ("auto" unpinned)
	phaseLatency       *histogramVec // per algorithm and solve phase, from the span tree
	batchSize          *histogram
	flushSize          *histogram // arrivals per stream micro-batch flush
	transitionCost     *histogram // reassigned jobs per repair

	// eventLatency holds one stream-event latency histogram per online
	// strategy, keyed by canonical name and grown lazily on first use so
	// plugin-registered strategies are covered without a rebuild.
	// stageLatency is its per-stage sibling: queue/flush/solve broken
	// out per strategy.
	eventMu      sync.RWMutex
	eventLatency map[string]*histogram
	stageLatency map[string]*[len(streamStages)]*histogram
}

func newMetrics() *metrics {
	return &metrics{
		solveLatency:   newHistogramVec(latencyBounds, 1e9),
		batchLatency:   newHistogramVec(latencyBounds, 1e9),
		phaseLatency:   newHistogramVec(phaseBounds, 1e9),
		batchSize:      newHistogram(batchSizeBounds, 1),
		flushSize:      newHistogram(flushSizeBounds, 1),
		transitionCost: newHistogram(transitionBounds, 1),
		eventLatency:   map[string]*histogram{},
		stageLatency:   map[string]*[len(streamStages)]*histogram{},
	}
}

// observeSolve records one single-solve wall clock under its
// algorithm's family ("error" when the solve failed — failures have a
// latency profile of their own worth seeing).
func (m *metrics) observeSolve(algorithm string, d time.Duration) {
	m.solveLatency.observe(fmt.Sprintf("algorithm=%q", algorithm), d.Seconds(), d.Nanoseconds())
}

// observeBatch records one whole-batch wall clock under the pinned
// batch algorithm ("auto" when the batch dispatches per request).
func (m *metrics) observeBatch(algorithm string, d time.Duration, size int) {
	m.batchLatency.observe(fmt.Sprintf("algorithm=%q", algorithm), d.Seconds(), d.Nanoseconds())
	m.batchSize.observe(float64(size), int64(size))
	m.batchInstances.Add(int64(size))
}

// observePhases feeds one solve's span tree into the
// busyd_solve_phase_seconds{algorithm,phase} histograms: every
// non-structural span (dispatch, bound, placement, local-search,
// reopt.*, certify) is one observation under its phase name.
func (m *metrics) observePhases(algorithm string, node *trace.Node) {
	if node == nil {
		return
	}
	for phase, ns := range phaseDurations(node) {
		m.phaseLatency.observe(fmt.Sprintf("algorithm=%q,phase=%q", algorithm, phase),
			float64(ns)/1e9, ns)
	}
}

// observeStreamEvent records one arrival's handling latency under its
// strategy's histogram.
func (m *metrics) observeStreamEvent(strategy string, d time.Duration) {
	m.eventMu.RLock()
	h := m.eventLatency[strategy]
	m.eventMu.RUnlock()
	if h == nil {
		m.eventMu.Lock()
		if h = m.eventLatency[strategy]; h == nil {
			h = newHistogram(eventLatencyBounds, 1e9)
			m.eventLatency[strategy] = h
		}
		m.eventMu.Unlock()
	}
	h.observe(d.Seconds(), d.Nanoseconds())
}

// observeStreamStages records one arrival's per-stage serving timings
// under its strategy's stage histograms.
func (m *metrics) observeStreamStages(strategy string, queueNS, flushNS, solveNS int64) {
	m.eventMu.RLock()
	hs := m.stageLatency[strategy]
	m.eventMu.RUnlock()
	if hs == nil {
		m.eventMu.Lock()
		if hs = m.stageLatency[strategy]; hs == nil {
			hs = new([len(streamStages)]*histogram)
			for i := range hs {
				hs[i] = newHistogram(eventLatencyBounds, 1e9)
			}
			m.stageLatency[strategy] = hs
		}
		m.eventMu.Unlock()
	}
	for i, ns := range [...]int64{queueNS, flushNS, solveNS} {
		hs[i].observe(float64(ns)/1e9, ns)
	}
}

// observeFlushSize records one micro-batch flush's arrival count.
func (m *metrics) observeFlushSize(size int) {
	m.flushSize.observe(float64(size), int64(size))
}

// observeReopt records one solve's cache outcome ("hit", "repair",
// "miss" — busytime's CacheOutcome strings) and, on a repair, its
// transition cost. Unknown or empty outcomes (cache disabled, non-cached
// kinds) are deliberately not counted.
func (m *metrics) observeReopt(outcome string, transition int) {
	switch outcome {
	case busytime.CacheHit:
		m.reoptHits.Add(1)
	case busytime.CacheRepair:
		m.reoptRepairs.Add(1)
		m.transitionCost.observe(float64(transition), int64(transition))
	case busytime.CacheMiss:
		m.reoptMisses.Add(1)
	}
}

// writeTo renders every counter in the Prometheus text format — plain
// counters and gauges, no client library dependency.
func (m *metrics) writeTo(w io.Writer) {
	fmt.Fprintf(w, "# HELP busyd_requests_total Requests received per endpoint.\n")
	fmt.Fprintf(w, "# TYPE busyd_requests_total counter\n")
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"solve\"} %d\n", m.requestsSolve.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"batch\"} %d\n", m.requestsBatch.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"stream\"} %d\n", m.requestsStream.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"stream_journal\"} %d\n", m.requestsJournal.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"algorithms\"} %d\n", m.requestsAlgorithms.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"healthz\"} %d\n", m.requestsHealth.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"debug_traces\"} %d\n", m.requestsTraces.Load())
	fmt.Fprintf(w, "# HELP busyd_rejected_total Requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE busyd_rejected_total counter\n")
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"overload\"} %d\n", m.rejectedOverload.Load())
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"too_large\"} %d\n", m.rejectedTooLarge.Load())
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"bad_request\"} %d\n", m.badRequests.Load())
	fmt.Fprintf(w, "# HELP busyd_solve_errors_total Per-request solve failures.\n")
	fmt.Fprintf(w, "# TYPE busyd_solve_errors_total counter\n")
	fmt.Fprintf(w, "busyd_solve_errors_total %d\n", m.solveErrors.Load())
	fmt.Fprintf(w, "# HELP busyd_in_flight Solve, batch and stream requests currently admitted.\n")
	fmt.Fprintf(w, "# TYPE busyd_in_flight gauge\n")
	fmt.Fprintf(w, "busyd_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP busyd_streams_open Live /v1/stream sessions.\n")
	fmt.Fprintf(w, "# TYPE busyd_streams_open gauge\n")
	fmt.Fprintf(w, "busyd_streams_open %d\n", m.streamsOpen.Load())
	fmt.Fprintf(w, "# HELP busyd_stream_events_total Stream arrivals by admission outcome.\n")
	fmt.Fprintf(w, "# TYPE busyd_stream_events_total counter\n")
	fmt.Fprintf(w, "busyd_stream_events_total{outcome=\"assigned\"} %d\n", m.streamAssigned.Load())
	fmt.Fprintf(w, "busyd_stream_events_total{outcome=\"rejected\"} %d\n", m.streamRejected.Load())
	fmt.Fprintf(w, "# HELP busyd_stream_errors_total Streams aborted by an error event.\n")
	fmt.Fprintf(w, "# TYPE busyd_stream_errors_total counter\n")
	fmt.Fprintf(w, "busyd_stream_errors_total %d\n", m.streamErrors.Load())
	fmt.Fprintf(w, "# HELP busyd_streams_resumed_total Sessions continued from their journal.\n")
	fmt.Fprintf(w, "# TYPE busyd_streams_resumed_total counter\n")
	fmt.Fprintf(w, "busyd_streams_resumed_total %d\n", m.streamsResumed.Load())
	fmt.Fprintf(w, "# HELP busyd_batch_instances_total Requests received inside batches.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_instances_total counter\n")
	fmt.Fprintf(w, "busyd_batch_instances_total %d\n", m.batchInstances.Load())
	fmt.Fprintf(w, "# HELP busyd_reopt_total Solves by reoptimization cache outcome.\n")
	fmt.Fprintf(w, "# TYPE busyd_reopt_total counter\n")
	fmt.Fprintf(w, "busyd_reopt_total{outcome=\"hit\"} %d\n", m.reoptHits.Load())
	fmt.Fprintf(w, "busyd_reopt_total{outcome=\"repair\"} %d\n", m.reoptRepairs.Load())
	fmt.Fprintf(w, "busyd_reopt_total{outcome=\"miss\"} %d\n", m.reoptMisses.Load())
	fmt.Fprintf(w, "# HELP busyd_solve_latency_seconds Single-solve wall clock, by algorithm.\n")
	fmt.Fprintf(w, "# TYPE busyd_solve_latency_seconds histogram\n")
	m.solveLatency.writeTo(w, "busyd_solve_latency_seconds")
	fmt.Fprintf(w, "# HELP busyd_batch_latency_seconds Whole-batch wall clock, by pinned algorithm.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_latency_seconds histogram\n")
	m.batchLatency.writeTo(w, "busyd_batch_latency_seconds")
	fmt.Fprintf(w, "# HELP busyd_solve_phase_seconds Solve phase breakdown from the span tree, by algorithm and phase.\n")
	fmt.Fprintf(w, "# TYPE busyd_solve_phase_seconds histogram\n")
	m.phaseLatency.writeTo(w, "busyd_solve_phase_seconds")
	fmt.Fprintf(w, "# HELP busyd_batch_size Requests per batch.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_size histogram\n")
	m.batchSize.writeTo(w, "busyd_batch_size", "")
	fmt.Fprintf(w, "# HELP busyd_stream_flush_size Arrivals per stream micro-batch flush.\n")
	fmt.Fprintf(w, "# TYPE busyd_stream_flush_size histogram\n")
	m.flushSize.writeTo(w, "busyd_stream_flush_size", "")
	fmt.Fprintf(w, "# HELP busyd_reopt_transition_jobs Carried-over jobs reassigned per repair.\n")
	fmt.Fprintf(w, "# TYPE busyd_reopt_transition_jobs histogram\n")
	m.transitionCost.writeTo(w, "busyd_reopt_transition_jobs", "")

	// Snapshot the per-strategy histogram pointers before rendering:
	// writing to w can block on a slow scraper, and holding eventMu
	// through that would let a queued writer in observeStreamEvent stall
	// every stream session's per-arrival hot path behind the scrape. The
	// histograms themselves are atomic and never removed, so rendering
	// outside the lock is safe.
	type namedHistogram struct {
		name string
		h    *histogram
	}
	m.eventMu.RLock()
	strategies := make([]namedHistogram, 0, len(m.eventLatency))
	for name, h := range m.eventLatency {
		strategies = append(strategies, namedHistogram{name, h})
	}
	type namedStages struct {
		name string
		hs   *[len(streamStages)]*histogram
	}
	staged := make([]namedStages, 0, len(m.stageLatency))
	for name, hs := range m.stageLatency {
		staged = append(staged, namedStages{name, hs})
	}
	m.eventMu.RUnlock()
	sort.Slice(strategies, func(i, j int) bool { return strategies[i].name < strategies[j].name })
	sort.Slice(staged, func(i, j int) bool { return staged[i].name < staged[j].name })
	if len(strategies) > 0 {
		fmt.Fprintf(w, "# HELP busyd_stream_event_latency_seconds Per-arrival stream event handling, by strategy.\n")
		fmt.Fprintf(w, "# TYPE busyd_stream_event_latency_seconds histogram\n")
		for _, s := range strategies {
			s.h.writeTo(w, "busyd_stream_event_latency_seconds", fmt.Sprintf("strategy=%q", s.name))
		}
	}
	if len(staged) > 0 {
		fmt.Fprintf(w, "# HELP busyd_stream_stage_latency_seconds Per-arrival serving stages (queue wait, flush, solve), by strategy.\n")
		fmt.Fprintf(w, "# TYPE busyd_stream_stage_latency_seconds histogram\n")
		for _, s := range staged {
			for i, stage := range streamStages {
				s.hs[i].writeTo(w, "busyd_stream_stage_latency_seconds",
					fmt.Sprintf("strategy=%q,stage=%q", s.name, stage))
			}
		}
	}

	// Go runtime gauges, snapshotted per render so operators can
	// correlate solve latency with scheduler load and GC pressure.
	// ReadMemStats briefly stops the world; once per scrape is cheap.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP busyd_goroutines Live goroutines at render time.\n")
	fmt.Fprintf(w, "# TYPE busyd_goroutines gauge\n")
	fmt.Fprintf(w, "busyd_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP busyd_heap_alloc_bytes Heap bytes allocated and still in use.\n")
	fmt.Fprintf(w, "# TYPE busyd_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "busyd_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP busyd_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE busyd_gc_cycles_total counter\n")
	fmt.Fprintf(w, "busyd_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP busyd_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(w, "# TYPE busyd_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "busyd_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}
