package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/workload"
)

// BenchmarkStreamSession measures one full /v1/stream session end to end
// over real HTTP: 256 arrivals streamed in, 256 assignment events plus
// the close report streamed back. It is the serving-layer counterpart of
// BenchmarkSolveBatch; CI uploads both so the streamed and batched paths
// are tracked side by side.
func BenchmarkStreamSession(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := workload.Arrivals(1, workload.Config{N: 256, G: 4, MaxTime: 4000, MaxLen: 80})
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	if err := enc.Encode(StreamOpen{G: in.G, Strategy: "online-bestfit"}); err != nil {
		b.Fatal(err)
	}
	for _, j := range in.Jobs {
		if err := enc.Encode(StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
			b.Fatal(err)
		}
	}
	payload := body.Bytes()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/stream", "application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
	}
	b.ReportMetric(float64(len(in.Jobs))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
