package server

// Stress suites for the serving layer's concurrency surfaces. They are
// interesting under `go test -race` (the dedicated CI step runs them
// with a raised -count); without the race detector they still assert
// the user-visible invariants: snapshots are complete and ordered, and
// every submitted arrival gets exactly one durable answer.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/online"
	"repro/internal/trace"
)

// TestStressTraceRing hammers the lock-free ring from concurrent
// writers while readers snapshot: every snapshot must be strictly
// newest-first with only complete entries, and after the dust settles
// the ring must hold exactly the last `slots` admissions.
func TestStressTraceRing(t *testing.T) {
	const (
		slots     = 64
		writers   = 8
		perWriter = 500
		readers   = 4
	)
	r := newTraceRing(slots)

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	var violations atomic.Int64
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.snapshot()
				if len(snap) > slots {
					violations.Add(1)
					return
				}
				for k, e := range snap {
					if e.Endpoint != "stress" || e.Trace == nil || e.Seq == 0 {
						violations.Add(1) // a torn entry escaped the ring
						return
					}
					if k > 0 && snap[k-1].Seq <= e.Seq {
						violations.Add(1) // not strictly newest-first
						return
					}
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				r.add(&TraceEntry{
					Endpoint: "stress",
					TraceID:  fmt.Sprintf("%d-%d", w, i),
					Trace:    &trace.Node{Name: "request"},
				})
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if n := violations.Load(); n != 0 {
		t.Fatalf("%d snapshot invariant violations under concurrency", n)
	}
	final := r.snapshot()
	if len(final) != slots {
		t.Fatalf("final snapshot has %d entries, want %d", len(final), slots)
	}
	const total = writers * perWriter
	for _, e := range final {
		if e.Seq <= total-slots || e.Seq > total {
			t.Fatalf("final ring holds seq %d, want only the last %d of %d", e.Seq, slots, total)
		}
	}
}

// TestStressBatcher submits arrivals from many goroutines into one
// batcher worker: every submission must come back exactly once with a
// distinct event sequence number and no error, and the observe hook's
// flush sizes must account for every item.
func TestStressBatcher(t *testing.T) {
	const (
		g          = 8
		submitters = 8
		perSub     = 200
		total      = submitters * perSub
	)
	store := journal.NewMemStore()
	jw, err := journal.NewWriter(store, "stress", journal.OpenParams{G: g, Strategy: "online-firstfit"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := online.NewSession(g, online.FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	var observed atomic.Int64
	b := newBatcher(sess, jw, 16, 0, func(size int, results []batchResult) {
		observed.Add(int64(size))
	})

	results := make(chan batchResult, total)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				// Identical start times: Offer rejects a start that goes
				// backwards, and concurrent submitters have no order.
				j := job.New(s*perSub+i, 0, 10)
				results <- <-b.submit(j, journal.ArrivalOf(j))
			}
		}(s)
	}
	wg.Wait()
	b.close()
	b.wait()
	close(results)

	seqs := map[int]bool{}
	n := 0
	for res := range results {
		n++
		if res.err != nil {
			t.Fatalf("arrival failed under concurrency: %v", res.err)
		}
		if seqs[res.ev.Seq] {
			t.Fatalf("event seq %d delivered twice", res.ev.Seq)
		}
		seqs[res.ev.Seq] = true
		if res.queueNS < 0 || res.flushNS < 0 || res.solveNS < 0 {
			t.Fatalf("negative stage timing: %+v", res)
		}
	}
	if n != total {
		t.Fatalf("got %d responses, want %d", n, total)
	}
	if got := observed.Load(); got != total {
		t.Fatalf("observe hook saw %d items, want %d", got, total)
	}
}
