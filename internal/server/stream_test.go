package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/workload"
)

// streamInstance posts the instance's jobs (in index order, which the
// workload families keep arrival-sorted) as one NDJSON stream session and
// returns the per-arrival events and the close event.
func streamInstance(t *testing.T, url string, open StreamOpen, in job.Instance) ([]StreamEvent, StreamEvent) {
	t.Helper()
	events, closeEv, err := streamInstanceErr(url, open, in)
	if err != nil {
		t.Fatal(err)
	}
	if closeEv == nil {
		t.Fatalf("stream ended after %d events without a close event", len(events))
	}
	return events, *closeEv
}

func streamInstanceErr(url string, open StreamOpen, in job.Instance) ([]StreamEvent, *StreamEvent, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	if err := enc.Encode(open); err != nil {
		return nil, nil, err
	}
	for _, j := range in.Jobs {
		if err := enc.Encode(StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
			return nil, nil, err
		}
	}
	resp, err := http.Post(url+"/v1/stream", "application/x-ndjson", &body)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("stream status %s: %s", resp.Status, out)
	}
	var events []StreamEvent
	var closeEv *StreamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return events, closeEv, nil
			}
			return nil, nil, err
		}
		if ev.Type == StreamEventClose {
			e := ev
			closeEv = &e
			continue
		}
		if ev.Type == StreamEventOpen {
			continue
		}
		events = append(events, ev)
	}
}

// TestStreamMatchesOfflineReplay is the acceptance e2e of the streaming
// subsystem: for every served strategy — FirstFit, Buckets, BestFit and
// the weighted budgeted one — the streamed session must emit exactly one
// event per arrival and close with a report byte-equal to what the
// offline replay harness derives from the same seeded workload.
func TestStreamMatchesOfflineReplay(t *testing.T) {
	ts := newTestServer(t, Config{})
	cfg := workload.Config{N: 150, G: 4, MaxTime: 900, MaxLen: 70}
	in := workload.WeightedArrivals(5, cfg)
	budget := in.LowerBound() * 3 / 2

	cases := []StreamOpen{
		{G: in.G, Strategy: "online-firstfit"},
		{G: in.G, Strategy: "online-buckets"},
		{G: in.G, Strategy: "online-bestfit"},
		{G: in.G, Strategy: "online-budget", Budget: budget},
	}
	for _, open := range cases {
		t.Run(open.Strategy, func(t *testing.T) {
			events, closeEv := streamInstance(t, ts.URL, open, in)
			if len(events) != len(in.Jobs) {
				t.Fatalf("%d arrivals produced %d events", len(in.Jobs), len(events))
			}
			for i, ev := range events {
				if ev.Seq != i {
					t.Fatalf("event %d carries seq %d", i, ev.Seq)
				}
				if ev.Type != StreamEventAssign && ev.Type != StreamEventReject {
					t.Fatalf("event %d has type %q", i, ev.Type)
				}
			}

			if closeEv.Session == "" {
				t.Fatal("close event carries no session id")
			}
			arrs := make([]journal.Arrival, len(in.Jobs))
			for i, j := range in.Jobs {
				arrs[i] = journal.ArrivalOf(j)
			}
			p := journal.OpenParams{G: in.G, Strategy: open.Strategy, Budget: open.Budget}
			_, cert, err := journal.Certify(closeEv.Session, p, arrs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(closeEv)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(WireStreamClose(cert.Summary, closeEv.Session, cert.Chain))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("streamed close event diverges from offline replay\n streamed: %s\n offline:  %s", got, want)
			}
			if open.Budget > 0 {
				if closeEv.Cost > open.Budget {
					t.Errorf("budgeted stream cost %d exceeds budget %d", closeEv.Cost, open.Budget)
				}
				if closeEv.Rejected == 0 {
					t.Error("tight budget rejected nothing; admission control untested")
				}
			}
		})
	}
}

// TestStreamLiveTelemetry checks the per-event fields are self-consistent:
// costs accumulate by the marginals, lower bounds are monotone, and the
// ratio matches cost/bound.
func TestStreamLiveTelemetry(t *testing.T) {
	ts := newTestServer(t, Config{})
	in := workload.Arrivals(9, workload.Config{N: 80, G: 3, MaxTime: 500, MaxLen: 50})
	events, closeEv := streamInstance(t, ts.URL, StreamOpen{G: in.G, Strategy: "online-bestfit"}, in)
	var cost, lb int64
	for i, ev := range events {
		cost += ev.Marginal
		if ev.Cost != cost {
			t.Fatalf("event %d: running cost %d, marginals sum to %d", i, ev.Cost, cost)
		}
		if ev.LowerBound < lb {
			t.Fatalf("event %d: lower bound fell %d -> %d", i, lb, ev.LowerBound)
		}
		lb = ev.LowerBound
		if ev.Cost < ev.LowerBound {
			t.Fatalf("event %d: cost %d below its own lower bound %d", i, ev.Cost, ev.LowerBound)
		}
	}
	if closeEv.Cost != cost || closeEv.LowerBound != lb {
		t.Errorf("close event (cost %d, LB %d) disagrees with event trail (cost %d, LB %d)",
			closeEv.Cost, closeEv.LowerBound, cost, lb)
	}
}

// TestStreamHeaderErrors exercises the pre-stream failure modes, which
// must be plain HTTP errors since no event has been written yet.
func TestStreamHeaderErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "", http.StatusBadRequest},
		{"malformed header", http.MethodPost, "{", http.StatusBadRequest},
		{"zero capacity", http.MethodPost, `{"g":0}`, http.StatusBadRequest},
		{"negative budget", http.MethodPost, `{"g":2,"budget":-5}`, http.StatusBadRequest},
		{"budget above the sane cap", http.MethodPost, `{"g":2,"budget":4611686018427387904}`, http.StatusBadRequest},
		{"unknown strategy", http.MethodPost, `{"g":2,"strategy":"nope"}`, http.StatusBadRequest},
		{"budget on non-budgeted strategy", http.MethodPost, `{"g":2,"strategy":"online-firstfit","budget":10}`, http.StatusBadRequest},
		{"budget strategy without budget", http.MethodPost, `{"g":2,"strategy":"online-budget"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+"/v1/stream", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Errorf("status %d, want %d", resp.StatusCode, c.status)
			}
		})
	}
}

// TestStreamInStreamErrors exercises failures after the status is
// committed: they must arrive as terminal error events on a 200 stream.
func TestStreamInStreamErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 4})
	cases := []struct {
		name     string
		arrivals string
		substr   string
	}{
		{"malformed arrival", `{"id":0,"start":0,"end":5}` + "\n" + `nope`, "decoding arrival"},
		{"empty interval", `{"id":0,"start":5,"end":5}`, "empty interval"},
		{"negative length", `{"id":0,"start":9,"end":3}`, "end 3 < start 9"},
		{"out of order", `{"id":0,"start":10,"end":20}` + "\n" + `{"id":1,"start":4,"end":30}`, "before the stream clock"},
		{"over the arrival cap", strings.Repeat(`{"id":0,"start":0,"end":5}`+"\n", 5), "exceeds limit 4"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := `{"g":2,"strategy":"online-firstfit"}` + "\n" + c.arrivals
			resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d, want 200 with a terminal error event", resp.StatusCode)
			}
			var last StreamEvent
			dec := json.NewDecoder(resp.Body)
			for {
				var ev StreamEvent
				if err := dec.Decode(&ev); err != nil {
					break
				}
				last = ev
			}
			if last.Type != StreamEventError {
				t.Fatalf("last event %+v, want a terminal error event", last)
			}
			if !strings.Contains(last.Error, c.substr) {
				t.Errorf("error %q does not mention %q", last.Error, c.substr)
			}
		})
	}
}

// TestStreamBodyCap checks the stream endpoint honors the daemon's
// byte-level admission bound: a session exceeding MaxBodyBytes ends with
// a terminal error event naming the limit instead of growing memory.
func TestStreamBodyCap(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 256})
	in := workload.Arrivals(3, workload.Config{N: 50, G: 2, MaxTime: 300, MaxLen: 20})
	_, _, err := streamInstanceErr(ts.URL, StreamOpen{G: in.G, Strategy: "online-firstfit"}, in)
	// The server may cut the connection mid-request (MaxBytesReader) or
	// deliver the terminal error event, depending on write timing; both
	// are acceptable, a silent successful close is not.
	if err == nil {
		events, closeEv, _ := streamInstanceErr(ts.URL, StreamOpen{G: in.G, Strategy: "online-firstfit"}, in)
		if closeEv != nil {
			t.Fatalf("oversized stream closed cleanly after %d events", len(events))
		}
		if n := len(events); n > 0 && events[n-1].Type == StreamEventError {
			if !strings.Contains(events[n-1].Error, "body limit") {
				t.Errorf("error %q does not name the body limit", events[n-1].Error)
			}
		}
	}
}

// TestStreamSessionsConcurrentWithBatch drives two concurrent stream
// sessions plus a solve batch on one Server under the race detector,
// asserting per-session isolation: each session's machine ids are its
// own dense opening order regardless of what the sibling session or the
// batch workers are doing, and the shared metrics counters add up.
func TestStreamSessionsConcurrentWithBatch(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfgA := workload.Config{N: 120, G: 3, MaxTime: 600, MaxLen: 50}
	cfgB := workload.Config{N: 90, G: 5, MaxTime: 400, MaxLen: 30}
	inA := workload.Arrivals(21, cfgA)
	inB := workload.BurstyArrivals(22, cfgB)

	type streamOut struct {
		events  []StreamEvent
		closeEv *StreamEvent
		err     error
	}
	var wg sync.WaitGroup
	outs := make([]streamOut, 2)
	run := func(i int, open StreamOpen, in job.Instance) {
		defer wg.Done()
		events, closeEv, err := streamInstanceErr(ts.URL, open, in)
		outs[i] = streamOut{events, closeEv, err}
	}
	wg.Add(2)
	go run(0, StreamOpen{G: inA.G, Strategy: "online-firstfit"}, inA)
	go run(1, StreamOpen{G: inB.G, Strategy: "online-bestfit"}, inB)

	var batchErr error
	var batchOut BatchResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := BatchRequest{}
		for i := 0; i < 8; i++ {
			batch.Requests = append(batch.Requests, Request{Instance: properInstance(int64(30+i), 40)})
		}
		data, err := json.Marshal(batch)
		if err != nil {
			batchErr = err
			return
		}
		resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", bytes.NewReader(data))
		if err != nil {
			batchErr = err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			batchErr = fmt.Errorf("batch status %s: %s", resp.Status, body)
			return
		}
		batchErr = json.Unmarshal(body, &batchOut)
	}()
	wg.Wait()

	if batchErr != nil {
		t.Fatalf("concurrent batch: %v", batchErr)
	}
	for _, res := range batchOut.Results {
		if res.Error != "" || !res.Certified {
			t.Errorf("batch result %+v not certified", res)
		}
	}
	for i, out := range outs {
		if out.err != nil {
			t.Fatalf("stream %d: %v", i, out.err)
		}
		if out.closeEv == nil {
			t.Fatalf("stream %d ended without a close event", i)
		}
		// Per-session isolation: machine ids are a dense 0..n sequence in
		// opening order, unperturbed by the sibling session.
		next := 0
		for _, ev := range out.events {
			if ev.Type != StreamEventAssign {
				t.Fatalf("stream %d: unexpected event %+v", i, ev)
			}
			if ev.Opened {
				if ev.Machine != next {
					t.Fatalf("stream %d: opened machine %d, want %d (ids leaked across sessions?)", i, ev.Machine, next)
				}
				next++
			} else if ev.Machine < 0 || ev.Machine >= next {
				t.Fatalf("stream %d: reused machine %d with only %d opened", i, ev.Machine, next)
			}
		}
		if out.closeEv.MachinesOpened != next {
			t.Errorf("stream %d: close reports %d machines, events opened %d", i, out.closeEv.MachinesOpened, next)
		}
	}

	// Shared metrics: both sessions' arrivals are counted, no stream is
	// still open, and both endpoints' request counters moved.
	wantEvents := int64(len(inA.Jobs) + len(inB.Jobs))
	if got := s.metrics.streamAssigned.Load() + s.metrics.streamRejected.Load(); got != wantEvents {
		t.Errorf("stream event counters = %d, want %d", got, wantEvents)
	}
	if got := s.metrics.streamsOpen.Load(); got != 0 {
		t.Errorf("streams-open gauge = %d after both sessions closed", got)
	}
	if got := s.metrics.requestsStream.Load(); got != 2 {
		t.Errorf("stream request counter = %d, want 2", got)
	}
	if got := s.metrics.requestsBatch.Load(); got != 1 {
		t.Errorf("batch request counter = %d, want 1", got)
	}
}
