package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceparentRoundTripSolve is the tracing acceptance e2e: a client
// that sends a W3C traceparent gets the span tree echoed in the body —
// covering dispatch, placement and certification — joined to its trace
// id, and the same tree lands in the /debug/traces ring.
func TestTraceparentRoundTripSolve(t *testing.T) {
	ts := newTestServer(t, Config{})
	tid, sid := trace.NewTraceID(), trace.NewSpanID()

	body, _ := json.Marshal(Request{Instance: properInstance(1, 12)})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, trace.Traceparent(tid, sid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}

	tp := resp.Header.Get("Traceparent")
	gotTID, _, err := trace.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if gotTID != tid {
		t.Errorf("response joined trace %s, want the client's %s", gotTID, tid)
	}

	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traceparent request returned no trace in the body")
	}
	if res.Trace.Name != "request" {
		t.Errorf("root span %q, want request", res.Trace.Name)
	}
	if res.Trace.TraceID != tid {
		t.Errorf("trace id %s, want the client's %s", res.Trace.TraceID, tid)
	}
	if res.Trace.ParentSpanID != sid {
		t.Errorf("root's remote parent %s, want the client's span %s", res.Trace.ParentSpanID, sid)
	}
	for _, phase := range []string{"solve", "dispatch", "placement", "bound", "certify"} {
		if res.Trace.Find(phase) == nil {
			t.Errorf("span tree is missing %q:\n%s", phase, data)
		}
	}
	if got := res.Trace.Find("solve").Attr("algorithm"); got != res.Algorithm {
		t.Errorf("solve span algorithm %q, want %q", got, res.Algorithm)
	}

	entries := debugTraces(t, ts.URL, "")
	if len(entries) != 1 {
		t.Fatalf("/debug/traces has %d entries, want 1", len(entries))
	}
	if entries[0].TraceID != tid || entries[0].Endpoint != "solve" {
		t.Errorf("ring entry = %s/%s, want %s/solve", entries[0].TraceID, entries[0].Endpoint, tid)
	}
}

// TestSolveWithoutTraceparentStillTraced: serving is always-on sampling.
// No header means no trace in the body — but the ring and the phase
// histograms still record the request.
func TestSolveWithoutTraceparentStillTraced(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(1, 10)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("no traceparent sent, but the body carries a trace")
	}
	if entries := debugTraces(t, ts.URL, ""); len(entries) != 1 {
		t.Errorf("/debug/traces has %d entries, want 1", len(entries))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(text), `busyd_solve_phase_seconds_count{algorithm=`) {
		t.Error("metrics are missing the busyd_solve_phase_seconds family")
	}
}

// TestInvalidTraceparentIgnored: a malformed header must not fail the
// request or opt the client into an echo — it is treated as absent.
func TestInvalidTraceparentIgnored(t *testing.T) {
	ts := newTestServer(t, Config{})
	body, _ := json.Marshal(Request{Instance: properInstance(1, 8)})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.TraceparentHeader, "00-not-a-traceparent-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("malformed traceparent still echoed a trace")
	}
}

// TestTraceparentRoundTripBatch checks the batch path: per-result solve
// subtrees in the body, the batch root in the ring.
func TestTraceparentRoundTripBatch(t *testing.T) {
	ts := newTestServer(t, Config{})
	tid, sid := trace.NewTraceID(), trace.NewSpanID()
	body, _ := json.Marshal(BatchRequest{Requests: []Request{
		{Instance: properInstance(1, 8)}, {Instance: properInstance(2, 8)},
	}})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.TraceparentHeader, trace.Traceparent(tid, sid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Trace == nil {
			t.Fatalf("batch result %d carries no trace", i)
		}
		if res.Trace.Name != "solve" {
			t.Errorf("batch result %d root span %q, want solve", i, res.Trace.Name)
		}
		if res.Trace.Find("placement") == nil {
			t.Errorf("batch result %d trace has no placement span", i)
		}
	}
	entries := debugTraces(t, ts.URL, "")
	if len(entries) != 1 || entries[0].Endpoint != "batch" || entries[0].Algorithm != "auto" {
		t.Fatalf("ring after batch = %+v, want one batch/auto entry", entries)
	}
}

// TestTraceparentRoundTripStream opens a traced NDJSON session and
// requires the close event to carry the session's root span with one
// synthesized aggregate node per serving stage.
func TestTraceparentRoundTripStream(t *testing.T) {
	ts := newTestServer(t, Config{})
	in := workload.Arrivals(3, workload.Config{N: 40, G: 3, MaxTime: 500, MaxLen: 50})
	tid, sid := trace.NewTraceID(), trace.NewSpanID()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	if err := enc.Encode(StreamOpen{G: in.G, Strategy: "online-bestfit"}); err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		if err := enc.Encode(StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(trace.TraceparentHeader, trace.Traceparent(tid, sid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: %d %s", resp.StatusCode, out)
	}
	if gotTID, _, err := trace.ParseTraceparent(resp.Header.Get("Traceparent")); err != nil || gotTID != tid {
		t.Errorf("stream response traceparent %q (err %v), want trace %s", resp.Header.Get("Traceparent"), err, tid)
	}

	var closeEv *StreamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if ev.Type == StreamEventClose {
			e := ev
			closeEv = &e
		} else if ev.Trace != nil {
			t.Errorf("%s event carries a trace; only close may", ev.Type)
		}
	}
	if closeEv == nil {
		t.Fatal("stream ended without a close event")
	}
	if closeEv.Trace == nil {
		t.Fatal("traced stream close carries no trace")
	}
	if closeEv.Trace.TraceID != tid {
		t.Errorf("stream trace id %s, want the client's %s", closeEv.Trace.TraceID, tid)
	}
	for _, stage := range []string{"stage.queue", "stage.flush", "stage.solve"} {
		n := closeEv.Trace.Find(stage)
		if n == nil {
			t.Fatalf("close trace missing %s:\n%+v", stage, closeEv.Trace)
		}
		if n.Attr("aggregate") != "true" {
			t.Errorf("%s is not marked aggregate", stage)
		}
		if n.Attr("arrivals") != fmt.Sprint(len(in.Jobs)) {
			t.Errorf("%s observed %s arrivals, want %d", stage, n.Attr("arrivals"), len(in.Jobs))
		}
	}
	all := debugTraces(t, ts.URL, "")
	if len(all) != 1 || all[0].Endpoint != "stream" {
		t.Fatalf("ring after stream = %+v, want one stream entry", all)
	}
}

// TestDebugTracesFilters drives several solves and checks the query
// surface: limit, min_ms, algorithm, and the 400/405 rejections.
func TestDebugTracesFilters(t *testing.T) {
	ts := newTestServer(t, Config{})
	for seed := int64(1); seed <= 3; seed++ {
		resp, data := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(seed, 10)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", seed, resp.StatusCode, data)
		}
	}

	all := debugTraces(t, ts.URL, "")
	if len(all) != 3 {
		t.Fatalf("ring has %d entries, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq <= all[i].Seq {
			t.Fatalf("ring not newest-first: seq %d before %d", all[i-1].Seq, all[i].Seq)
		}
	}
	if got := debugTraces(t, ts.URL, "?limit=2"); len(got) != 2 {
		t.Errorf("limit=2 returned %d entries", len(got))
	}
	if got := debugTraces(t, ts.URL, "?min_ms=1e9"); len(got) != 0 {
		t.Errorf("min_ms=1e9 returned %d entries, want 0", len(got))
	}
	if got := debugTraces(t, ts.URL, "?algorithm=no-such-algorithm"); len(got) != 0 {
		t.Errorf("algorithm filter matched %d entries, want 0", len(got))
	}
	// Auto dispatch may pick different algorithms per instance; the
	// filter must return exactly the entries carrying the chosen label.
	want := 0
	for _, e := range all {
		if e.Algorithm == all[0].Algorithm {
			want++
		}
	}
	if got := debugTraces(t, ts.URL, "?algorithm="+all[0].Algorithm); len(got) != want {
		t.Errorf("algorithm=%s matched %d entries, want %d", all[0].Algorithm, len(got), want)
	}

	for _, q := range []string{"?min_ms=-1", "?min_ms=abc", "?limit=-2", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/traces%s = %d, want 400", q, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/debug/traces", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/traces = %d, want 405", resp.StatusCode)
	}
}

// TestTraceRingEviction fills a small ring past capacity and checks
// eviction drops oldest-first while the snapshot stays newest-first.
func TestTraceRingEviction(t *testing.T) {
	r := newTraceRing(4)
	for i := 0; i < 10; i++ {
		r.add(&TraceEntry{Endpoint: "solve"})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot has %d entries, want 4", len(got))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
}

// TestTraceRingConcurrent hammers the ring from writers while readers
// snapshot — the lock-free reader contract under the race detector.
func TestTraceRingConcurrent(t *testing.T) {
	r := newTraceRing(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.add(&TraceEntry{Endpoint: "solve", Trace: &trace.Node{Name: "request"}})
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		snap := r.snapshot()
		if len(snap) > 8 {
			t.Fatalf("snapshot has %d entries, cap is 8", len(snap))
		}
		for j := range snap {
			if snap[j] == nil || snap[j].Trace == nil {
				t.Fatal("snapshot returned an incomplete entry")
			}
			if j > 0 && snap[j-1].Seq <= snap[j].Seq {
				t.Fatal("snapshot not sorted newest-first")
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSlowSolveLog sets the threshold to one nanosecond so every solve
// is slow, and requires the structured slow_solve line with its phase
// breakdown in the request log.
func TestSlowSolveLog(t *testing.T) {
	var buf syncBuffer
	ts := newTestServer(t, Config{SlowSolve: time.Nanosecond, RequestLog: &buf})
	resp, data := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(1, 10)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}

	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var entry struct {
			Kind      string           `json:"kind"`
			Algorithm string           `json:"algorithm"`
			PhaseNS   map[string]int64 `json:"phase_ns"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("malformed log line %q: %v", line, err)
		}
		if entry.Kind != "slow_solve" {
			continue
		}
		found = true
		if entry.Algorithm == "" {
			t.Error("slow_solve line has no algorithm")
		}
		if len(entry.PhaseNS) == 0 {
			t.Error("slow_solve line has no phase breakdown")
		}
		for _, structural := range []string{"request", "solve", "batch"} {
			if _, ok := entry.PhaseNS[structural]; ok {
				t.Errorf("structural span %q leaked into the phase breakdown", structural)
			}
		}
	}
	if !found {
		t.Fatalf("no slow_solve line in the request log:\n%s", buf.String())
	}
}

// syncBuffer is a race-safe bytes.Buffer for capturing the request log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// debugTraces fetches and decodes GET /debug/traces with the given
// query string ("" or "?k=v&...").
func debugTraces(t *testing.T, baseURL, query string) []*TraceEntry {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces%s: %d %s", query, resp.StatusCode, data)
	}
	var out TracesResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding /debug/traces: %v\n%s", err, data)
	}
	return out.Traces
}
