package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	busytime "repro"
	"repro/internal/journal"
	"repro/internal/trace"
)

// Config wires the daemon's flags to the server. The zero value serves
// with auto dispatch, GOMAXPROCS batch workers and no admission limits.
type Config struct {
	// Algorithm optionally pins one registered algorithm for every
	// request that does not name its own batch algorithm; empty selects
	// auto dispatch.
	Algorithm string
	// Workers is the SolveBatch pool size (0 = GOMAXPROCS).
	Workers int
	// Budget is the default busy-time budget applied to max-throughput
	// requests that carry none.
	Budget int64
	// MaxInFlight caps concurrently admitted solve/batch requests;
	// excess requests are refused with 429. 0 = unlimited.
	MaxInFlight int
	// MaxJobs caps the per-instance job count; larger instances are
	// refused with 413. 0 = unlimited.
	MaxJobs int
	// MaxBatch caps requests per batch; larger batches are refused with
	// 413. 0 = unlimited.
	MaxBatch int
	// MaxBodyBytes caps request body size (default 8 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds the graceful shutdown drain (default 10 s).
	DrainTimeout time.Duration
	// Journal is the durable placement log behind /v1/stream sessions;
	// nil selects an in-memory store (sessions survive disconnects for
	// the life of the process, not across restarts).
	Journal journal.Store
	// StreamBatch caps the arrivals per micro-batch flush on the stream
	// ingest path (default 128).
	StreamBatch int
	// StreamBatchWait bounds how long a non-full micro-batch waits for
	// more arrivals before flushing. <= 0 (the default) never waits:
	// each flush takes whatever has queued since the last one, so batch
	// size adapts to the arrival rate with no added latency.
	StreamBatchWait time.Duration
	// ReoptCache sizes the default solver's instance-fingerprint cache
	// for warm-started reoptimization (0 = the default 512 entries,
	// negative = disabled). Per-batch pinned solvers never cache: their
	// results must stay a pure function of the pinned algorithm.
	ReoptCache int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints are opt-in on a serving daemon).
	EnablePprof bool
	// RequestLog receives one JSON line per request and per stream
	// lifecycle event; nil disables request logging.
	RequestLog io.Writer
	// SlowSolve, when positive, emits a structured slow_solve log line
	// (with the per-phase breakdown from the span tree) for every
	// solve/batch/stream request at or above the threshold.
	SlowSolve time.Duration
	// TraceRing sizes the /debug/traces ring of recent root spans
	// (default 128).
	TraceRing int
}

// Server serves the Solver API over HTTP: POST /v1/solve,
// POST /v1/solve/batch, POST /v1/stream (NDJSON online sessions),
// GET /v1/algorithms, GET /healthz, GET /metrics. It is safe for
// concurrent use.
type Server struct {
	cfg      Config
	solver   *busytime.Solver
	pinnedMu sync.Mutex
	pinned   map[string]*busytime.Solver // per-batch-algorithm solver cache
	metrics  *metrics
	reqlog   *requestLog
	traces   *traceRing

	// activeStreams guards each journal session against concurrent
	// serving: one connection per session id at a time.
	streamMu      sync.Mutex
	activeStreams map[string]bool
}

// New validates the configuration (a pinned default algorithm must be
// registered) and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.StreamBatch <= 0 {
		cfg.StreamBatch = 128
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 128
	}
	if cfg.Journal == nil {
		cfg.Journal = journal.NewMemStore()
	}
	if cfg.Algorithm != "" {
		if _, err := busytime.LookupAlgorithm(cfg.Algorithm); err != nil {
			return nil, err
		}
	}
	defaultOpts := solverOptions(cfg, cfg.Algorithm)
	if cfg.ReoptCache >= 0 {
		capacity := cfg.ReoptCache
		if capacity == 0 {
			capacity = 512
		}
		defaultOpts = append(defaultOpts, busytime.WithReoptimization(capacity))
	}
	s := &Server{
		cfg:           cfg,
		solver:        busytime.NewSolver(defaultOpts...),
		pinned:        map[string]*busytime.Solver{},
		metrics:       newMetrics(),
		reqlog:        newRequestLog(cfg.RequestLog),
		traces:        newTraceRing(cfg.TraceRing),
		activeStreams: map[string]bool{},
	}
	return s, nil
}

func solverOptions(cfg Config, algorithm string) []busytime.SolverOption {
	opts := []busytime.SolverOption{busytime.WithParallelism(cfg.Workers)}
	if algorithm != "" {
		opts = append(opts, busytime.WithAlgorithm(algorithm))
	}
	if cfg.Budget > 0 {
		opts = append(opts, busytime.WithBudget(cfg.Budget))
	}
	return opts
}

// solverFor resolves the batch-level algorithm override. Solvers are
// immutable, so one per algorithm is built lazily and cached.
func (s *Server) solverFor(algorithm string) (*busytime.Solver, error) {
	if algorithm == "" || algorithm == s.cfg.Algorithm {
		return s.solver, nil
	}
	info, err := busytime.LookupAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	s.pinnedMu.Lock()
	defer s.pinnedMu.Unlock()
	if solver, ok := s.pinned[info.Name]; ok {
		return solver, nil
	}
	solver := busytime.NewSolver(solverOptions(s.cfg, info.Name)...)
	s.pinned[info.Name] = solver
	return solver, nil
}

// Handler returns the route mux — also the entry point for httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/solve/batch", s.handleBatch)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/stream/journal", s.handleStreamJournal)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	if s.cfg.EnablePprof {
		// Explicit routes rather than the package's DefaultServeMux
		// side-effect registration: the daemon's mux must expose pprof
		// only when asked to.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Run listens on addr and serves until ctx is canceled, then drains
// gracefully: in-flight requests get up to DrainTimeout to finish.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on a caller-provided listener (tests bind 127.0.0.1:0
// and read the bound address back from the listener).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, give in-flight solves up to
		// DrainTimeout to finish, then force-close the stragglers
		// (closing their connections cancels their request contexts,
		// which the solve paths honor).
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return srv.Close()
		}
		return nil
	case err := <-errc:
		return err
	}
}

// admit applies the in-flight cap. It returns a release func on
// success and writes the 429 itself on refusal.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	n := s.metrics.inFlight.Add(1)
	if s.cfg.MaxInFlight > 0 && n > int64(s.cfg.MaxInFlight) {
		s.metrics.inFlight.Add(-1)
		s.metrics.rejectedOverload.Add(1)
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("server: %d requests in flight exceeds limit %d", n, s.cfg.MaxInFlight))
		return nil, false
	}
	return func() { s.metrics.inFlight.Add(-1) }, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsSolve.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: POST only"))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	var req Request
	if !s.decode(w, r, &req) {
		return
	}
	if s.tooLarge(w, req.Jobs()) {
		return
	}
	solverReq, err := req.ToSolverRequest()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Serving is always-on sampling: the request is traced into the
	// ring and the phase histograms regardless; a client that sent a
	// valid traceparent additionally gets the span tree echoed on the
	// wire result.
	ctx, root, echo := s.startTrace(r, "solve")
	defer root.End()
	start := time.Now()
	res, err := s.solver.Solve(ctx, solverReq)
	if err != nil {
		s.metrics.observeSolve("error", time.Since(start))
		s.metrics.solveErrors.Add(1)
		root.SetAttr("error", err.Error())
		s.finishTrace(root, "solve", "error")
		s.reqlog.log(logEntry{Kind: "solve", Outcome: "error",
			DurationNS: time.Since(start).Nanoseconds(), Error: err.Error()})
		writeJSON(w, http.StatusUnprocessableEntity, Result{Kind: solverReq.Kind.String(), Error: err.Error()})
		return
	}
	s.metrics.observeSolve(res.Algorithm, time.Since(start))
	// Certification happens at the serving layer (WireResult re-derives
	// the certificate), so its span lives under the request root, beside
	// the solver's own "solve" subtree.
	_, csp := trace.Start(ctx, "certify")
	wres := WireResult(res)
	csp.End()
	node := s.finishTrace(root, "solve", res.Algorithm)
	s.metrics.observePhases(res.Algorithm, node)
	s.reqlog.log(logEntry{Kind: "solve", Outcome: "ok", Algorithm: res.Algorithm,
		DurationNS: time.Since(start).Nanoseconds()})
	if res.CacheOutcome != "" {
		s.metrics.observeReopt(res.CacheOutcome, res.Transition)
		w.Header().Set("X-Busytime-Cache", res.CacheOutcome)
	}
	if echo {
		wres.Trace = node
	}
	w.Header().Set("Traceparent", trace.Traceparent(root.TraceID(), root.SpanID()))
	writeJSON(w, http.StatusOK, wres)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsBatch.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: POST only"))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	var batch batchEnvelope
	if !s.decode(w, r, &batch) {
		return
	}
	if s.cfg.MaxBatch > 0 && len(batch.Requests) > s.cfg.MaxBatch {
		s.metrics.rejectedTooLarge.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: batch of %d requests exceeds limit %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	solver, err := s.solverFor(batch.Algorithm)
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Decode every wire request per item. A malformed or oversized item
	// fails alone — its slot is pre-filled and skipped by the solver —
	// so one bad request never poisons the batch.
	kinds := make([]string, len(batch.Requests))
	reqs := make([]busytime.Request, len(batch.Requests))
	pre := make([]*Result, len(batch.Requests))
	for i, raw := range batch.Requests {
		var wireReq Request
		if err := json.Unmarshal(raw, &wireReq); err != nil {
			s.metrics.badRequests.Add(1)
			pre[i] = &Result{Error: fmt.Sprintf("server: decoding request: %v", err)}
			continue
		}
		kinds[i] = wireReq.Kind
		if s.cfg.MaxJobs > 0 && wireReq.Jobs() > s.cfg.MaxJobs {
			s.metrics.rejectedTooLarge.Add(1)
			pre[i] = &Result{Error: fmt.Sprintf("server: instance of %d jobs exceeds limit %d", wireReq.Jobs(), s.cfg.MaxJobs)}
			continue
		}
		sreq, err := wireReq.ToSolverRequest()
		if err != nil {
			s.metrics.badRequests.Add(1)
			pre[i] = &Result{Error: err.Error()}
			continue
		}
		reqs[i] = sreq
	}

	// Solve only the live slots, then re-interleave order-stably.
	live := make([]busytime.Request, 0, len(reqs))
	liveIdx := make([]int, 0, len(reqs))
	for i := range reqs {
		if pre[i] == nil {
			live = append(live, reqs[i])
			liveIdx = append(liveIdx, i)
		}
	}
	// The batch latency family and the trace ring label the batch by its
	// pinned algorithm's canonical name; an unpinned batch is "auto".
	batchAlg := "auto"
	if batch.Algorithm != "" {
		if info, err := busytime.LookupAlgorithm(batch.Algorithm); err == nil {
			batchAlg = info.Name
		}
	}
	ctx, root, echo := s.startTrace(r, "batch")
	defer root.End()
	start := time.Now()
	results, batchErr := solver.SolveBatch(ctx, live)
	s.metrics.observeBatch(batchAlg, time.Since(start), len(batch.Requests))

	// Pre-failed items were already counted by their rejection reason
	// (too_large / bad_request); only real solve failures count below.
	resp := BatchResponse{Results: make([]Result, len(batch.Requests))}
	for i := range resp.Results {
		if pre[i] != nil {
			resp.Results[i] = *pre[i]
			resp.Results[i].Kind = kinds[i]
		}
	}
	// One certify span covers the whole re-derivation loop: per-item
	// certification is the dominant serving-side cost of a batch.
	_, csp := trace.Start(ctx, "certify")
	for k, idx := range liveIdx {
		resp.Results[idx] = WireResult(results[k])
		if results[k].Err != nil {
			s.metrics.solveErrors.Add(1)
			continue
		}
		if results[k].CacheOutcome != "" {
			s.metrics.observeReopt(results[k].CacheOutcome, results[k].Transition)
		}
		s.metrics.observePhases(results[k].Algorithm, results[k].Trace)
		if echo {
			resp.Results[idx].Trace = results[k].Trace
		}
	}
	csp.End()
	s.finishTrace(root, "batch", batchAlg)
	w.Header().Set("Traceparent", trace.Traceparent(root.TraceID(), root.SpanID()))
	// The batch-level error is ctx's: the client went away or the
	// daemon is draining past its timeout. Per-request errors are
	// already inline; report the batch as a whole anyway.
	if batchErr != nil {
		s.reqlog.log(logEntry{Kind: "batch", Outcome: "error", Size: len(batch.Requests), Algorithm: batchAlg,
			DurationNS: time.Since(start).Nanoseconds(), Error: batchErr.Error()})
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	s.reqlog.log(logEntry{Kind: "batch", Outcome: "ok", Size: len(batch.Requests), Algorithm: batchAlg,
		DurationNS: time.Since(start).Nanoseconds()})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsAlgorithms.Add(1)
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: GET only"))
		return
	}
	writeJSON(w, http.StatusOK, WireAlgorithms())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsHealth.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.writeTo(w)
}

// decode reads a JSON body under the size cap, reporting 400 (malformed)
// or 413 (over the body cap) itself.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.rejectedTooLarge.Add(1)
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return false
		}
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: decoding request: %v", err))
		return false
	}
	return true
}

// tooLarge applies the per-instance size cap, writing the 413 itself.
func (s *Server) tooLarge(w http.ResponseWriter, jobs int) bool {
	if s.cfg.MaxJobs > 0 && jobs > s.cfg.MaxJobs {
		s.metrics.rejectedTooLarge.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: instance of %d jobs exceeds limit %d", jobs, s.cfg.MaxJobs))
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
