package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/igraph"
	"repro/internal/online"
	"repro/internal/registry"
)

// handleStream serves POST /v1/stream: a full-duplex NDJSON session that
// feeds arrival events into a per-connection online strategy and emits
// one placement event per arrival, with live cost / lower-bound /
// competitive-ratio telemetry, then a final close report when the client
// ends its stream.
//
// Protocol (one JSON value per line, both directions):
//
//	→ {"g":4,"strategy":"online-bestfit","budget":0}     session header
//	→ {"id":0,"start":3,"end":9,"weight":2}              arrival events…
//	← {"type":"assign","job_id":0,"machine":0,"opened":true,...}
//	← {"type":"reject","job_id":7,...}                   (admission control)
//	← {"type":"close","cost":...,"ratio":...}            on client EOF
//
// Header problems are plain HTTP errors (400/405/429); once the first
// event is written the status is committed, so later failures surface as
// a terminal {"type":"error"} event. Arrivals must carry non-decreasing
// start times — the defining property of an online stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsStream.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: POST only"))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	// The stream shares the daemon's byte-level admission bound: without
	// it this would be the one endpoint where a single huge JSON value
	// (or an unbounded session) could grow memory past every other cap.
	// MaxBodyBytes therefore also bounds a session's total request bytes;
	// at the defaults (8 MiB, ~60 B per arrival line) it sits above the
	// 100k-job -max-jobs cap.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	var open StreamOpen
	if err := dec.Decode(&open); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: decoding stream header: %v", err))
		return
	}
	sess, alg, err := s.newStreamSession(open)
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.metrics.streamsOpen.Add(1)
	defer s.metrics.streamsOpen.Add(-1)

	// HTTP/1.x is half-duplex by default: the server closes the request
	// body once the handler starts writing. A stream session reads
	// arrivals and writes events on the same connection, so opt into
	// full duplex (a no-op error on transports that already are, e.g. h2).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false // client gone; nothing left to tell it
		}
		_ = rc.Flush()
		return true
	}
	fail := func(err error) {
		s.metrics.streamErrors.Add(1)
		emit(StreamEvent{Type: StreamEventError, Error: err.Error()})
	}

	arrivals := 0
	for {
		var arr StreamArrival
		if err := dec.Decode(&arr); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A client that went away mid-stream is ordinary churn, not a
			// bad request or a stream error; there is no one left to tell.
			if r.Context().Err() != nil {
				return
			}
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.metrics.rejectedTooLarge.Add(1)
				fail(fmt.Errorf("server: stream exceeded the request body limit of %d bytes", s.cfg.MaxBodyBytes))
				return
			}
			s.metrics.badRequests.Add(1)
			fail(fmt.Errorf("server: decoding arrival %d: %v", arrivals, err))
			return
		}
		arrivals++
		if s.cfg.MaxJobs > 0 && arrivals > s.cfg.MaxJobs {
			s.metrics.rejectedTooLarge.Add(1)
			fail(fmt.Errorf("server: stream of %d arrivals exceeds limit %d", arrivals, s.cfg.MaxJobs))
			return
		}
		j, err := arr.ToJob()
		if err != nil {
			s.metrics.badRequests.Add(1)
			fail(err)
			return
		}
		start := time.Now()
		ev, err := sess.Offer(j)
		s.metrics.observeStreamEvent(alg, time.Since(start))
		if err != nil {
			s.metrics.badRequests.Add(1)
			fail(err)
			return
		}
		if ev.Rejected {
			s.metrics.streamRejected.Add(1)
		} else {
			s.metrics.streamAssigned.Add(1)
		}
		if !emit(WireStreamEvent(ev)) {
			return
		}
	}
	emit(WireStreamClose(sess.Summary()))
}

// newStreamSession validates the stream header and builds the session:
// capacity, resolved strategy (strongest registered when unnamed), and
// the budget handed to admission-control strategies.
func (s *Server) newStreamSession(open StreamOpen) (*online.Session, string, error) {
	if open.G < 1 {
		return nil, "", fmt.Errorf("server: stream capacity g = %d, need g >= 1", open.G)
	}
	if open.Budget < 0 {
		return nil, "", fmt.Errorf("server: stream budget %d, need >= 0", open.Budget)
	}
	var alg registry.Algorithm
	var err error
	if open.Strategy == "" {
		alg, err = registry.For(registry.Online, igraph.General)
	} else {
		alg, err = registry.LookupKind(registry.Online, open.Strategy)
	}
	if err != nil {
		return nil, "", err
	}
	st := alg.NewStrategy()
	bs, budgeted := st.(online.BudgetSetter)
	switch {
	case open.Budget > 0 && !budgeted:
		return nil, "", fmt.Errorf("server: strategy %s does not support a budget (use %s)", alg.Name, "online-budget")
	case open.Budget == 0 && budgeted:
		// Without a budget the admission-control strategy silently
		// degenerates to plain BestFit; refuse, like the CLI does.
		return nil, "", fmt.Errorf("server: strategy %s needs a positive budget (it admits everything without one)", alg.Name)
	case budgeted:
		bs.SetBudget(open.Budget)
	}
	sess, err := online.NewSession(open.G, st)
	if err != nil {
		return nil, "", err
	}
	return sess, alg.Name, nil
}
