package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/igraph"
	"repro/internal/journal"
	"repro/internal/online"
	"repro/internal/registry"
	"repro/internal/safemath"
	"repro/internal/trace"
)

// handleStream serves POST /v1/stream: a full-duplex NDJSON session that
// feeds arrival events through the micro-batched ingest stage into a
// per-session online strategy, journals every placement durably before
// acknowledging it, and emits one placement event per arrival with live
// telemetry plus per-stage serving timings, then a final close report
// carrying the journal chain's certificate hash.
//
// Protocol (one JSON value per line, both directions):
//
//	→ {"g":4,"strategy":"online-bestfit","session":"run-1"}  header
//	→ {"id":0,"start":3,"end":9,"weight":2}                  arrivals…
//	← {"type":"open","session":"run-1","strategy":...}
//	← {"type":"assign","job_id":0,"machine":0,...,"queue_ns":...}
//	← {"type":"reject","job_id":7,...}       (admission control)
//	← {"type":"close","session":"run-1","chain":"ab12…",...} on EOF
//
// A disconnected session is not lost: its journal survives (in the file
// store, across a daemon crash), and
//
//	POST /v1/stream?resume=<session>&seq=<n>
//
// rebuilds the session by journal replay, re-emits the journal tail
// from online seq n with "replay":true, and continues accepting
// arrivals — no header line on a resume; the open record already fixed
// the parameters. An interrupted-and-resumed session produces a close
// report byte-equal to an uninterrupted one, chain hash included.
//
// Header problems are plain HTTP errors (400/404/405/409/429); once the
// first event is written the status is committed, so later failures
// surface as a terminal {"type":"error"} event, which leaves the
// journal unclosed — and the session resumable from its durable prefix.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsStream.Add(1)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: POST only"))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	// The stream shares the daemon's byte-level admission bound: without
	// it this would be the one endpoint where a single huge JSON value
	// (or an unbounded session) could grow memory past every other cap.
	// MaxBodyBytes therefore also bounds a session's total request bytes;
	// at the defaults (8 MiB, ~60 B per arrival line) it sits above the
	// 100k-job -max-jobs cap.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)

	// Both setup paths claim the session id before returning success, so
	// exactly one connection serves a session at a time (sessions and
	// journal writers are single-goroutine by contract).
	var (
		sess    *online.Session
		jw      *journal.Writer
		alg     string
		tail    []journal.Record // events to re-emit on resume
		resumed bool
	)
	if resumeID := r.URL.Query().Get("resume"); resumeID != "" {
		state, from, status, err := s.resumeStreamSession(resumeID, r.URL.Query().Get("seq"))
		if err != nil {
			if status == http.StatusBadRequest {
				s.metrics.badRequests.Add(1)
			}
			httpError(w, status, err)
			return
		}
		sess, alg, resumed = state.Session, state.Params.Strategy, true
		jw, err = journal.ResumeWriter(s.cfg.Journal, state)
		if err != nil {
			s.releaseSession(resumeID)
			httpError(w, http.StatusConflict, err)
			return
		}
		for _, rec := range state.Records {
			if rec.Kind == journal.KindEvent && rec.Event.Seq >= from {
				tail = append(tail, rec)
			}
		}
		s.metrics.streamsResumed.Add(1)
	} else {
		var open StreamOpen
		if err := dec.Decode(&open); err != nil {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: decoding stream header: %v", err))
			return
		}
		var status int
		var err error
		sess, jw, alg, status, err = s.openStreamSession(open)
		if err != nil {
			if status == http.StatusBadRequest {
				s.metrics.badRequests.Add(1)
			}
			httpError(w, status, err)
			return
		}
	}
	session := jw.Session()
	defer s.releaseSession(session)

	s.metrics.streamsOpen.Add(1)
	defer s.metrics.streamsOpen.Add(-1)
	sessionStart := time.Now()
	outcome := "ok"
	if resumed {
		outcome = "resumed"
	}
	s.reqlog.log(logEntry{Kind: "stream_open", Session: session, Seq: sess.Arrivals(), Outcome: outcome})

	// The session root span opens once the setup paths have committed;
	// earlier failures are plain HTTP errors and never reach the ring.
	// The trace context is not threaded into the batcher — per-arrival
	// stage timings are aggregated by StageStats and grafted onto the
	// root as synthesized nodes at close.
	_, root, echo := s.startTrace(r, "stream")
	defer root.End()
	root.SetAttr("session", session)
	root.SetAttr("strategy", alg)
	stats := &online.StageStats{}

	// HTTP/1.x is half-duplex by default: the server closes the request
	// body once the handler starts writing. A stream session reads
	// arrivals and writes events on the same connection, so opt into
	// full duplex (a no-op error on transports that already are, e.g. h2).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Traceparent", trace.Traceparent(root.TraceID(), root.SpanID()))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false // client gone; nothing left to tell it
		}
		_ = rc.Flush()
		return true
	}
	fail := func(err error) {
		s.metrics.streamErrors.Add(1)
		s.reqlog.log(logEntry{Kind: "stream_error", Session: session, Seq: sess.Arrivals(),
			Outcome: "error", Error: err.Error()})
		emit(StreamEvent{Type: StreamEventError, Session: session, Error: err.Error()})
	}

	if !emit(StreamEvent{Type: StreamEventOpen, Session: session, Strategy: alg,
		Resumed: resumed, Arrivals: sess.Arrivals()}) {
		return
	}
	for _, rec := range tail {
		ev := WireStreamEvent(rec.Event.OnlineEvent())
		ev.Replay = true
		if !emit(ev) {
			return
		}
	}

	// The batcher worker owns the session and journal writer from here
	// until wait() returns. The reader goroutine decodes and submits
	// arrivals; this goroutine collects responses in arrival order and
	// emits them — decode, solve+journal, and emit pipeline across three
	// goroutines while per-arrival ordering is preserved.
	b := newBatcher(sess, jw, s.cfg.StreamBatch, s.cfg.StreamBatchWait, s.observeFlush(alg, stats))
	type pending struct {
		resp    <-chan batchResult
		err     error // terminal reader-side failure; decode marks decoder errors
		decode  bool
		arrival int
	}
	queue := make(chan pending, cap(b.in))
	done := make(chan struct{})
	go func() {
		defer b.close()
		push := func(p pending) bool {
			select {
			case queue <- p:
				return true
			case <-done:
				return false
			}
		}
		arrivals := sess.Arrivals() // journaled arrivals count toward the cap on resume
		for {
			var arr StreamArrival
			if err := dec.Decode(&arr); err != nil {
				if !errors.Is(err, io.EOF) {
					push(pending{err: err, decode: true, arrival: arrivals})
				}
				close(queue)
				return
			}
			arrivals++
			if s.cfg.MaxJobs > 0 && arrivals > s.cfg.MaxJobs {
				push(pending{err: fmt.Errorf("server: stream of %d arrivals exceeds limit %d", arrivals, s.cfg.MaxJobs), arrival: arrivals})
				close(queue)
				return
			}
			j, err := arr.ToJob()
			if err != nil {
				push(pending{err: err, arrival: arrivals})
				close(queue)
				return
			}
			if !push(pending{resp: b.submit(j, journal.ArrivalOf(j))}) {
				close(queue)
				return
			}
		}
	}()

	clean := true
	for p := range queue {
		if p.err != nil {
			// A client that went away mid-stream is ordinary churn, not a
			// bad request or a stream error; there is no one left to tell.
			if r.Context().Err() != nil {
				clean = false
				break
			}
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(p.err, &tooBig):
				s.metrics.rejectedTooLarge.Add(1)
				fail(fmt.Errorf("server: stream exceeded the request body limit of %d bytes", s.cfg.MaxBodyBytes))
			case p.decode:
				s.metrics.badRequests.Add(1)
				fail(fmt.Errorf("server: decoding arrival %d: %v", p.arrival, p.err))
			default:
				s.metrics.badRequests.Add(1)
				fail(p.err)
			}
			clean = false
			break
		}
		res := <-p.resp
		if res.err != nil {
			s.metrics.badRequests.Add(1)
			fail(res.err)
			clean = false
			break
		}
		if res.ev.Rejected {
			s.metrics.streamRejected.Add(1)
		} else {
			s.metrics.streamAssigned.Add(1)
		}
		ev := WireStreamEvent(res.ev)
		ev.QueueNS, ev.FlushNS, ev.SolveNS = res.queueNS, res.flushNS, res.solveNS
		s.reqlog.log(logEntry{Kind: "stream_event", Session: session, Seq: res.ev.Seq,
			Outcome: ev.Type, DurationNS: safemath.SatAdd(res.queueNS, res.flushNS)})
		if !emit(ev) {
			clean = false
			break
		}
	}
	// Unblock the reader (it closes the batcher input on exit), then
	// join the worker; only after that are the session and writer safe
	// to touch again.
	close(done)
	b.wait()
	if !clean {
		return // journal left unclosed: the session is resumable
	}
	sum := sess.Summary()
	chain, err := jw.Close(sum)
	if err != nil {
		fail(fmt.Errorf("server: closing journal: %v", err))
		return
	}
	s.reqlog.log(logEntry{Kind: "stream_close", Session: session, Seq: sum.Arrivals,
		Outcome: "ok", Algorithm: alg, DurationNS: time.Since(sessionStart).Nanoseconds()})
	node := s.finishTrace(root, "stream", alg, stageNodes(stats)...)
	ev := WireStreamClose(sum, session, chain)
	if echo {
		// The trace rides the close event only for clients that sent a
		// traceparent: the journaled close report stays byte-identical to
		// an offline replay, trace or no trace.
		ev.Trace = node
	}
	emit(ev)
}

// observeFlush is the batcher's metrics hook: per-stage latency per
// arrival plus the flush-size distribution, and the session's running
// stage totals for its close-report trace. The batcher worker is the
// only goroutine touching stats until the handler has joined it.
func (s *Server) observeFlush(alg string, stats *online.StageStats) func(size int, results []batchResult) {
	return func(size int, results []batchResult) {
		s.metrics.observeFlushSize(size)
		for i := range results {
			if results[i].err != nil {
				continue
			}
			stats.Observe(results[i].queueNS, results[i].flushNS, results[i].solveNS)
			s.metrics.observeStreamStages(alg, results[i].queueNS, results[i].flushNS, results[i].solveNS)
			s.metrics.observeStreamEvent(alg, time.Duration(results[i].solveNS))
		}
	}
}

// openStreamSession validates the stream header and opens a fresh
// journaled session: capacity, resolved strategy (strongest registered
// when unnamed), the budget handed to admission-control strategies, and
// the open record persisted before the first arrival is read. On
// success the session id is claimed; the returned status is the HTTP
// code to use on error.
func (s *Server) openStreamSession(open StreamOpen) (*online.Session, *journal.Writer, string, int, error) {
	if open.G < 1 {
		return nil, nil, "", http.StatusBadRequest, fmt.Errorf("server: stream capacity g = %d, need g >= 1", open.G)
	}
	if open.Budget < 0 || open.Budget > maxWireCoord {
		return nil, nil, "", http.StatusBadRequest, fmt.Errorf("server: stream budget %d outside [0, 2^40]", open.Budget)
	}
	var alg registry.Algorithm
	var err error
	if open.Strategy == "" {
		alg, err = registry.For(registry.Online, igraph.General)
	} else {
		alg, err = registry.LookupKind(registry.Online, open.Strategy)
	}
	if err != nil {
		return nil, nil, "", http.StatusBadRequest, err
	}
	st := alg.NewStrategy()
	bs, budgeted := st.(online.BudgetSetter)
	switch {
	case open.Budget > 0 && !budgeted:
		return nil, nil, "", http.StatusBadRequest, fmt.Errorf("server: strategy %s does not support a budget (use %s)", alg.Name, "online-budget")
	case open.Budget == 0 && budgeted:
		// Without a budget the admission-control strategy silently
		// degenerates to plain BestFit; refuse, like the CLI does.
		return nil, nil, "", http.StatusBadRequest, fmt.Errorf("server: strategy %s needs a positive budget (it admits everything without one)", alg.Name)
	case budgeted:
		bs.SetBudget(open.Budget)
	}
	sess, err := online.NewSession(open.G, st)
	if err != nil {
		return nil, nil, "", http.StatusBadRequest, err
	}
	session := open.Session
	if session == "" {
		session = newSessionID()
	} else if !journal.ValidSessionID(session) {
		return nil, nil, "", http.StatusBadRequest, fmt.Errorf("server: invalid session id %q (want 1-64 chars of [A-Za-z0-9._-])", open.Session)
	}
	// Claim before touching the store: two racing opens on one id must
	// not both write an open record.
	if !s.claimSession(session) {
		return nil, nil, "", http.StatusConflict, fmt.Errorf("server: session %s is already being served", session)
	}
	// The journal records the canonical strategy name, never an alias:
	// the open record seeds the hash chain, and a certificate must not
	// depend on which spelling the client used.
	jw, err := journal.NewWriter(s.cfg.Journal, session, journal.OpenParams{G: open.G, Strategy: alg.Name, Budget: open.Budget})
	if err != nil {
		s.releaseSession(session)
		if errors.Is(err, journal.ErrSessionExists) {
			return nil, nil, "", http.StatusConflict, fmt.Errorf("server: session %s already has a journal; resume it with ?resume=%s", session, session)
		}
		return nil, nil, "", http.StatusInternalServerError, err
	}
	return sess, jw, alg.Name, 0, nil
}

// resumeStreamSession rebuilds a disconnected session from its journal,
// claiming the id on success. It returns the replayed state and the
// online seq the client wants the event tail re-emitted from.
func (s *Server) resumeStreamSession(session, seqStr string) (*journal.ReplayState, int, int, error) {
	if !journal.ValidSessionID(session) {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("server: invalid session id %q", session)
	}
	from := 0
	if seqStr != "" {
		n, err := strconv.Atoi(seqStr)
		if err != nil || n < 0 {
			return nil, 0, http.StatusBadRequest, fmt.Errorf("server: invalid resume seq %q", seqStr)
		}
		from = n
	}
	if !s.claimSession(session) {
		return nil, 0, http.StatusConflict, fmt.Errorf("server: session %s is already being served", session)
	}
	state, status, err := func() (*journal.ReplayState, int, error) {
		recs, err := s.cfg.Journal.Read(session)
		if err != nil {
			if errors.Is(err, journal.ErrUnknownSession) {
				return nil, http.StatusNotFound, fmt.Errorf("server: no journal for session %s", session)
			}
			return nil, http.StatusInternalServerError, err
		}
		state, err := journal.Replay(recs)
		if err != nil {
			// The journal exists but does not replay: corruption or a
			// build mismatch. Surface it loudly; it certifies nothing.
			return nil, http.StatusInternalServerError, fmt.Errorf("server: journal for session %s does not replay: %v", session, err)
		}
		if state.Closed {
			return nil, http.StatusConflict, fmt.Errorf("server: session %s is closed; its journal is final", session)
		}
		if from > state.Arrivals {
			return nil, http.StatusBadRequest, fmt.Errorf("server: resume seq %d beyond the journal's %d arrivals", from, state.Arrivals)
		}
		return state, 0, nil
	}()
	if err != nil {
		s.releaseSession(session)
		return nil, 0, status, err
	}
	return state, from, 0, nil
}

// handleStreamJournal serves GET /v1/stream/journal?session=<id>: the
// session's raw journal as NDJSON records, so clients can verify the
// chained certificate independently (busysim stream -verify does).
func (s *Server) handleStreamJournal(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJournal.Add(1)
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: GET only"))
		return
	}
	session := r.URL.Query().Get("session")
	if !journal.ValidSessionID(session) {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: invalid session id %q", session))
		return
	}
	recs, err := s.cfg.Journal.Read(session)
	if err != nil {
		if errors.Is(err, journal.ErrUnknownSession) {
			httpError(w, http.StatusNotFound, fmt.Errorf("server: no journal for session %s", session))
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = journal.EncodeRecords(w, recs)
}

// claimSession marks a session as actively served, refusing a second
// concurrent stream on the same id (sessions and writers are
// single-goroutine; two connections interleaving offers would corrupt
// the chain).
func (s *Server) claimSession(id string) bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.activeStreams[id] {
		return false
	}
	s.activeStreams[id] = true
	return true
}

func (s *Server) releaseSession(id string) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	delete(s.activeStreams, id)
}

// newSessionID generates a random 128-bit session id. crypto/rand.Read
// is documented to never fail and to always fill the buffer.
func newSessionID() string {
	var b [16]byte
	_, _ = rand.Read(b[:])
	return "s-" + hex.EncodeToString(b[:])
}
