package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// logEntry is one structured request-log line: every served request and
// every stream lifecycle event emits exactly one, so an operator can
// reconstruct a session's timeline (open → events → close/error) by
// filtering on the session id.
type logEntry struct {
	// TS is the wall-clock time of the entry (RFC 3339, nanoseconds).
	TS string `json:"ts"`
	// Kind names the entry: solve, batch, stream_open, stream_event,
	// stream_close, stream_error.
	Kind string `json:"kind"`
	// Session and Seq identify the stream position for stream_* entries.
	Session string `json:"session,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	// Outcome is the entry's result: ok / error for requests,
	// assign / reject / resumed / error for stream entries.
	Outcome string `json:"outcome"`
	// DurationNS is the entry's wall clock: request handling for
	// solve/batch, queue+flush+solve for a stream event, whole-session
	// for close.
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Size is the batch/flush size where one applies.
	Size int `json:"size,omitempty"`
	// Algorithm labels solve/batch entries with the served algorithm
	// ("auto" for an unpinned batch, "error" for a failed solve).
	Algorithm string `json:"algorithm,omitempty"`
	// PhaseNS carries the per-phase breakdown on slow_solve entries:
	// phase span name → total nanoseconds in the request's trace.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// Error carries the failure detail on error outcomes.
	Error string `json:"error,omitempty"`
}

// requestLog serializes JSON-line entries onto one writer. A nil
// *requestLog (or a nil writer) drops everything — the -quiet path costs
// one nil check per entry, no formatting.
type requestLog struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// newRequestLog returns a logger writing to w, or nil when w is nil.
func newRequestLog(w io.Writer) *requestLog {
	if w == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return &requestLog{w: w, enc: enc}
}

// log writes one entry, stamping the timestamp; safe on a nil receiver.
func (l *requestLog) log(e logEntry) {
	if l == nil {
		return
	}
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
}
