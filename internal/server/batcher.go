package server

import (
	"time"

	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/online"
)

// batchResult is one arrival's outcome handed back on its response
// channel: the placement event plus the per-stage serving timings
// (queue wait, shared flush wall clock, this arrival's solve time).
type batchResult struct {
	ev      online.Event
	err     error
	queueNS int64
	flushNS int64
	solveNS int64
}

// batchItem is one submitted arrival awaiting a flush.
type batchItem struct {
	j        job.Job
	arr      journal.Arrival
	enqueued time.Time
	resp     chan batchResult // buffered(1); the worker always delivers
}

// batcher is the micro-batching ingest stage of a stream session: a
// single worker goroutine owns the session and its journal writer
// (neither is safe for concurrent use), collects arrivals into batches
// bounded by maxSize and maxWait, runs the strategy per arrival, stages
// every placement, and persists the whole batch in ONE journal append —
// one fsync per flush instead of per arrival, which is where a
// high-rate stream's throughput goes. Responses are delivered only
// after the append returns, so every event a client sees is durable
// and therefore resumable.
//
// With maxWait <= 0 the worker never sleeps: it flushes whatever has
// queued since the last flush (adaptive batching — batch size tracks
// the arrival rate, latency stays at one flush under low load).
type batcher struct {
	sess    *online.Session
	jw      *journal.Writer
	maxSize int
	maxWait time.Duration
	in      chan batchItem
	done    chan struct{}
	observe func(size int, results []batchResult)

	// dead poisons the batcher after a session or journal failure: the
	// in-memory session may be ahead of the durable log, so accepting
	// more arrivals could acknowledge placements a resume would not
	// reproduce. Worker-only; no lock.
	dead error
}

// newBatcher starts the worker. observe (optional) is called once per
// flush with every item's result, after responses are delivered — the
// metrics hook.
func newBatcher(sess *online.Session, jw *journal.Writer, maxSize int, maxWait time.Duration, observe func(int, []batchResult)) *batcher {
	if maxSize < 1 {
		maxSize = 1
	}
	b := &batcher{
		sess:    sess,
		jw:      jw,
		maxSize: maxSize,
		maxWait: maxWait,
		in:      make(chan batchItem, maxSize),
		done:    make(chan struct{}),
		observe: observe,
	}
	go b.run()
	return b
}

// submit hands one arrival to the worker and returns its response
// channel. The caller must not submit after close.
func (b *batcher) submit(j job.Job, arr journal.Arrival) <-chan batchResult {
	it := batchItem{j: j, arr: arr, enqueued: time.Now(), resp: make(chan batchResult, 1)}
	b.in <- it
	return it.resp
}

// close ends the input stream; the worker flushes what remains and
// exits. Exactly one caller (the arrival reader) may close.
func (b *batcher) close() { close(b.in) }

// wait blocks until the worker has drained and exited; after wait the
// session and writer are safe to touch again (for the close report).
func (b *batcher) wait() { <-b.done }

// run is the worker loop: block for the batch's first item, gather up
// to maxSize more (bounded by maxWait, or just "already queued" in
// greedy mode), flush, repeat.
func (b *batcher) run() {
	defer close(b.done)
	batch := make([]batchItem, 0, b.maxSize)
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		open := b.fill(&batch)
		b.flush(batch)
		if !open {
			return
		}
	}
}

// fill gathers more items after the first, returning false once the
// input channel is closed.
func (b *batcher) fill(batch *[]batchItem) bool {
	if b.maxWait <= 0 {
		for len(*batch) < b.maxSize {
			select {
			case it, ok := <-b.in:
				if !ok {
					return false
				}
				*batch = append(*batch, it)
			default:
				return true
			}
		}
		return true
	}
	deadline := time.NewTimer(b.maxWait)
	defer deadline.Stop()
	for len(*batch) < b.maxSize {
		select {
		case it, ok := <-b.in:
			if !ok {
				return false
			}
			*batch = append(*batch, it)
		case <-deadline.C:
			return true
		}
	}
	return true
}

// flush runs the batch through the strategy, persists every placement
// in one append, then responds to every item. A strategy error poisons
// the session (it is defined to be unusable after one) and fails the
// item and everything after it; an append error fails the whole flush —
// in both cases nothing unjournaled is ever acknowledged as placed.
func (b *batcher) flush(batch []batchItem) {
	flushStart := time.Now()
	results := make([]batchResult, len(batch))
	for i, it := range batch {
		if b.dead != nil {
			results[i].err = b.dead
			continue
		}
		solveStart := time.Now()
		ev, err := b.sess.Offer(it.j)
		results[i].solveNS = time.Since(solveStart).Nanoseconds()
		if err != nil {
			results[i].err = err
			b.dead = err
			continue
		}
		if _, err := b.jw.StageEvent(it.arr, ev); err != nil {
			results[i].err = err
			b.dead = err
			continue
		}
		results[i].ev = ev
	}
	if err := b.jw.Commit(); err != nil {
		b.dead = err
		for i := range results {
			if results[i].err == nil {
				results[i].err = err
			}
		}
	}
	flushNS := time.Since(flushStart).Nanoseconds()
	for i, it := range batch {
		results[i].flushNS = flushNS
		results[i].queueNS = flushStart.Sub(it.enqueued).Nanoseconds()
		it.resp <- results[i]
	}
	if b.observe != nil {
		b.observe(len(batch), results)
	}
}
