package server

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// parseExposition splits Prometheus text output into sample lines,
// returning name{labels} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// checkHistogram asserts the Prometheus histogram invariants for one
// metric (with optional labels, given without the le pair): cumulative
// buckets are monotonically non-decreasing, the +Inf bucket is present,
// and its count equals _count.
func checkHistogram(t *testing.T, samples map[string]float64, name, labels string) {
	t.Helper()
	sep := ""
	if labels != "" {
		sep = ","
	}
	buckets := 0
	var inf float64
	hasInf := false
	for key, v := range samples {
		if !strings.HasPrefix(key, name+"_bucket{"+labels+sep+"le=") {
			continue
		}
		buckets++
		if strings.Contains(key, `le="+Inf"`) {
			inf, hasInf = v, true
		}
	}
	if buckets == 0 {
		t.Fatalf("histogram %s{%s}: no buckets rendered", name, labels)
	}
	if !hasInf {
		t.Fatalf("histogram %s{%s}: no +Inf bucket", name, labels)
	}
	countKey := name + "_count"
	if labels != "" {
		countKey = name + "_count{" + labels + "}"
	}
	count, ok := samples[countKey]
	if !ok {
		t.Fatalf("histogram %s{%s}: no _count sample", name, labels)
	}
	if inf != count {
		t.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, labels, inf, count)
	}
}

// checkHistogramMonotone walks the exposition text in order and checks
// each histogram's cumulative buckets never decrease.
func checkHistogramMonotone(t *testing.T, text string) {
	t.Helper()
	prevByName := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name := line[:strings.Index(line, "_bucket{")]
		// Per-strategy histograms are separate series; key by name+labels
		// minus the le pair.
		labels := line[strings.Index(line, "{"):strings.LastIndex(line, " ")]
		le := strings.Index(labels, "le=")
		series := name + labels[:le]
		v, err := strconv.ParseFloat(strings.TrimSpace(line[strings.LastIndex(line, " ")+1:]), 64)
		if err != nil {
			t.Fatalf("malformed bucket line %q: %v", line, err)
		}
		if prev, ok := prevByName[series]; ok && v < prev {
			t.Errorf("histogram series %s: bucket fell %g -> %g (%q)", series, prev, v, line)
		}
		prevByName[series] = v
	}
}

// TestMetricsHistogramExposition renders /metrics after a spread of
// observations and checks Prometheus-text conformance: every histogram's
// buckets are cumulative (monotonically non-decreasing) and end in a
// +Inf bucket whose count equals _count.
func TestMetricsHistogramExposition(t *testing.T) {
	m := newMetrics()
	durations := []time.Duration{
		50 * time.Microsecond, 300 * time.Microsecond, time.Millisecond,
		7 * time.Millisecond, 80 * time.Millisecond, 2 * time.Second, time.Minute, // past the last bound
	}
	for _, d := range durations {
		m.observeSolve("greedy-tracking", d)
		m.observeBatch("auto", d, 3)
	}
	m.observeSolve("error", time.Millisecond)
	m.observeBatch("auto", time.Millisecond, 10000) // past the last batch-size bound
	m.observePhases("greedy-tracking", &trace.Node{Name: "solve", DurationNS: 5e6, Children: []*trace.Node{
		{Name: "dispatch", DurationNS: 1e6},
		{Name: "placement", DurationNS: 3e6},
		{Name: "bound", DurationNS: 5e5},
	}})
	for i := 0; i < 5; i++ {
		m.observeStreamEvent("online-bestfit", time.Duration(i+1)*time.Microsecond)
		m.observeStreamEvent("online-budget", time.Second)
	}

	var buf bytes.Buffer
	m.writeTo(&buf)
	text := buf.String()
	samples := parseExposition(t, text)
	checkHistogram(t, samples, "busyd_solve_latency_seconds", `algorithm="greedy-tracking"`)
	checkHistogram(t, samples, "busyd_solve_latency_seconds", `algorithm="error"`)
	checkHistogram(t, samples, "busyd_batch_latency_seconds", `algorithm="auto"`)
	checkHistogram(t, samples, "busyd_batch_size", "")
	for _, phase := range []string{"dispatch", "placement", "bound"} {
		checkHistogram(t, samples, "busyd_solve_phase_seconds", `algorithm="greedy-tracking",phase="`+phase+`"`)
	}
	checkHistogram(t, samples, "busyd_stream_event_latency_seconds", `strategy="online-bestfit"`)
	checkHistogram(t, samples, "busyd_stream_event_latency_seconds", `strategy="online-budget"`)
	checkHistogramMonotone(t, text)

	if got := samples[`busyd_solve_latency_seconds_count{algorithm="greedy-tracking"}`]; got != float64(len(durations)) {
		t.Errorf("solve latency count %g, want %d", got, len(durations))
	}
	// The structural "solve" root groups its phases; it must not become a
	// phase series of its own.
	for key := range samples {
		if strings.Contains(key, `phase="solve"`) {
			t.Errorf("structural span leaked into the phase histograms: %s", key)
		}
	}
}

// TestMetricsRuntimeGauges checks the Go runtime block renders sane
// values: a live process has goroutines and a heap.
func TestMetricsRuntimeGauges(t *testing.T) {
	m := newMetrics()
	var buf bytes.Buffer
	m.writeTo(&buf)
	samples := parseExposition(t, buf.String())
	if samples["busyd_goroutines"] < 1 {
		t.Errorf("busyd_goroutines = %g, want >= 1", samples["busyd_goroutines"])
	}
	if samples["busyd_heap_alloc_bytes"] <= 0 {
		t.Errorf("busyd_heap_alloc_bytes = %g, want > 0", samples["busyd_heap_alloc_bytes"])
	}
	for _, key := range []string{"busyd_gc_cycles_total", "busyd_gc_pause_seconds_total"} {
		if v, ok := samples[key]; !ok || v < 0 {
			t.Errorf("%s = %g (present %v), want present and >= 0", key, v, ok)
		}
	}
}

// TestMetricsHistogramConsistentUnderConcurrency hammers a histogram from
// writers while rendering it, re-checking the +Inf == _count invariant on
// every render: the exposition must snapshot, not sum live counters into
// a drifting total.
func TestMetricsHistogramConsistentUnderConcurrency(t *testing.T) {
	m := newMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.observeSolve("greedy-tracking", time.Duration(i%1000)*time.Microsecond)
				}
			}
		}(w)
	}
	for render := 0; render < 200; render++ {
		var buf bytes.Buffer
		m.writeTo(&buf)
		samples := parseExposition(t, buf.String())
		inf := samples[`busyd_solve_latency_seconds_bucket{algorithm="greedy-tracking",le="+Inf"}`]
		count := samples[`busyd_solve_latency_seconds_count{algorithm="greedy-tracking"}`]
		if inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf("render %d: +Inf bucket %g != _count %g under concurrent observes", render, inf, count)
		}
		checkHistogramMonotone(t, buf.String())
	}
	close(stop)
	wg.Wait()
}

// TestMetricsStreamCounters checks the new stream gauges/counters render.
func TestMetricsStreamCounters(t *testing.T) {
	m := newMetrics()
	m.requestsStream.Add(3)
	m.streamsOpen.Add(2)
	m.streamAssigned.Add(41)
	m.streamRejected.Add(1)
	var buf bytes.Buffer
	m.writeTo(&buf)
	samples := parseExposition(t, buf.String())
	for key, want := range map[string]float64{
		`busyd_requests_total{endpoint="stream"}`:       3,
		"busyd_streams_open":                            2,
		`busyd_stream_events_total{outcome="assigned"}`: 41,
		`busyd_stream_events_total{outcome="rejected"}`: 1,
		"busyd_stream_errors_total":                     0,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}
