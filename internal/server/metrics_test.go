package server

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition splits Prometheus text output into sample lines,
// returning name{labels} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// checkHistogram asserts the Prometheus histogram invariants for one
// metric (with optional labels, given without the le pair): cumulative
// buckets are monotonically non-decreasing, the +Inf bucket is present,
// and its count equals _count.
func checkHistogram(t *testing.T, samples map[string]float64, name, labels string) {
	t.Helper()
	sep := ""
	if labels != "" {
		sep = ","
	}
	buckets := 0
	var inf float64
	hasInf := false
	for key, v := range samples {
		if !strings.HasPrefix(key, name+"_bucket{"+labels+sep+"le=") {
			continue
		}
		buckets++
		if strings.Contains(key, `le="+Inf"`) {
			inf, hasInf = v, true
		}
	}
	if buckets == 0 {
		t.Fatalf("histogram %s{%s}: no buckets rendered", name, labels)
	}
	if !hasInf {
		t.Fatalf("histogram %s{%s}: no +Inf bucket", name, labels)
	}
	countKey := name + "_count"
	if labels != "" {
		countKey = name + "_count{" + labels + "}"
	}
	count, ok := samples[countKey]
	if !ok {
		t.Fatalf("histogram %s{%s}: no _count sample", name, labels)
	}
	if inf != count {
		t.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, labels, inf, count)
	}
}

// checkHistogramMonotone walks the exposition text in order and checks
// each histogram's cumulative buckets never decrease.
func checkHistogramMonotone(t *testing.T, text string) {
	t.Helper()
	prevByName := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name := line[:strings.Index(line, "_bucket{")]
		// Per-strategy histograms are separate series; key by name+labels
		// minus the le pair.
		labels := line[strings.Index(line, "{"):strings.LastIndex(line, " ")]
		le := strings.Index(labels, "le=")
		series := name + labels[:le]
		v, err := strconv.ParseFloat(strings.TrimSpace(line[strings.LastIndex(line, " ")+1:]), 64)
		if err != nil {
			t.Fatalf("malformed bucket line %q: %v", line, err)
		}
		if prev, ok := prevByName[series]; ok && v < prev {
			t.Errorf("histogram series %s: bucket fell %g -> %g (%q)", series, prev, v, line)
		}
		prevByName[series] = v
	}
}

// TestMetricsHistogramExposition renders /metrics after a spread of
// observations and checks Prometheus-text conformance: every histogram's
// buckets are cumulative (monotonically non-decreasing) and end in a
// +Inf bucket whose count equals _count.
func TestMetricsHistogramExposition(t *testing.T) {
	m := newMetrics()
	durations := []time.Duration{
		50 * time.Microsecond, 300 * time.Microsecond, time.Millisecond,
		7 * time.Millisecond, 80 * time.Millisecond, 2 * time.Second, time.Minute, // past the last bound
	}
	for _, d := range durations {
		m.observeSolve(d)
		m.observeBatch(d, 3)
	}
	m.observeBatch(time.Millisecond, 10000) // past the last batch-size bound
	for i := 0; i < 5; i++ {
		m.observeStreamEvent("online-bestfit", time.Duration(i+1)*time.Microsecond)
		m.observeStreamEvent("online-budget", time.Second)
	}

	var buf bytes.Buffer
	m.writeTo(&buf)
	text := buf.String()
	samples := parseExposition(t, text)
	checkHistogram(t, samples, "busyd_solve_latency_seconds", "")
	checkHistogram(t, samples, "busyd_batch_latency_seconds", "")
	checkHistogram(t, samples, "busyd_batch_size", "")
	checkHistogram(t, samples, "busyd_stream_event_latency_seconds", `strategy="online-bestfit"`)
	checkHistogram(t, samples, "busyd_stream_event_latency_seconds", `strategy="online-budget"`)
	checkHistogramMonotone(t, text)

	if got := samples[`busyd_solve_latency_seconds_count`]; got != float64(len(durations)) {
		t.Errorf("solve latency count %g, want %d", got, len(durations))
	}
}

// TestMetricsHistogramConsistentUnderConcurrency hammers a histogram from
// writers while rendering it, re-checking the +Inf == _count invariant on
// every render: the exposition must snapshot, not sum live counters into
// a drifting total.
func TestMetricsHistogramConsistentUnderConcurrency(t *testing.T) {
	m := newMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.observeSolve(time.Duration(i%1000) * time.Microsecond)
				}
			}
		}(w)
	}
	for render := 0; render < 200; render++ {
		var buf bytes.Buffer
		m.writeTo(&buf)
		samples := parseExposition(t, buf.String())
		inf := samples[`busyd_solve_latency_seconds_bucket{le="+Inf"}`]
		count := samples[`busyd_solve_latency_seconds_count`]
		if inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf("render %d: +Inf bucket %g != _count %g under concurrent observes", render, inf, count)
		}
		checkHistogramMonotone(t, buf.String())
	}
	close(stop)
	wg.Wait()
}

// TestMetricsStreamCounters checks the new stream gauges/counters render.
func TestMetricsStreamCounters(t *testing.T) {
	m := newMetrics()
	m.requestsStream.Add(3)
	m.streamsOpen.Add(2)
	m.streamAssigned.Add(41)
	m.streamRejected.Add(1)
	var buf bytes.Buffer
	m.writeTo(&buf)
	samples := parseExposition(t, buf.String())
	for key, want := range map[string]float64{
		`busyd_requests_total{endpoint="stream"}`:       3,
		"busyd_streams_open":                            2,
		`busyd_stream_events_total{outcome="assigned"}`: 41,
		`busyd_stream_events_total{outcome="rejected"}`: 1,
		"busyd_stream_errors_total":                     0,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}
