package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestServerSolveMalformedInputs posts hostile wire bodies at /v1/solve
// and requires a structured 400 (or 413/422 where noted) for every one —
// never a panic-driven 500. The rect end < start rows pin a real bug:
// the codec used to construct the rectangle before validating, and
// interval.New panics on end < start, crashing the handler.
func TestServerSolveMalformedInputs(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{
			"rect dim1 end before start",
			`{"rect":{"g":2,"jobs":[{"id":0,"start1":10,"end1":3,"start2":0,"end2":5}]}}`,
			http.StatusBadRequest, "end 3 < start 10",
		},
		{
			"rect dim2 end before start",
			`{"rect":{"g":2,"jobs":[{"id":0,"start1":0,"end1":5,"start2":9,"end2":-4}]}}`,
			http.StatusBadRequest, "end -4 < start 9",
		},
		{
			"rect coordinates overflow",
			`{"rect":{"g":2,"jobs":[{"id":0,"start1":-9223372036854775800,"end1":9223372036854775800,"start2":0,"end2":5}]}}`,
			http.StatusBadRequest, "sane range",
		},
		{
			"1-D negative length",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":9,"end":3}]}}`,
			http.StatusBadRequest, "end 3 < start 9",
		},
		{
			"1-D coordinates overflow",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":-4611686018427387904,"end":4611686018427387904}]}}`,
			http.StatusBadRequest, "sane range",
		},
		{
			"negative weight",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5,"weight":-3}]}}`,
			http.StatusBadRequest, "weight",
		},
		{
			"overflowing weight",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5,"weight":1e300}]}}`,
			http.StatusBadRequest, "",
		},
		{
			"NaN weight is not JSON",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5,"weight":NaN}]}}`,
			http.StatusBadRequest, "",
		},
		{
			"weight above the sane cap",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5,"weight":4611686018427387904}]}}`,
			http.StatusBadRequest, "sane cap",
		},
		{
			"demand above the sane cap",
			`{"instance":{"g":4611686018427387904,"jobs":[{"id":0,"start":0,"end":5,"demand":2305843009213693952}]}}`,
			http.StatusBadRequest, "sane cap",
		},
		{
			"both instance and rect",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]},"rect":{"g":2,"jobs":[{"id":0,"start1":0,"end1":5,"start2":0,"end2":5}]}}`,
			http.StatusBadRequest, "both",
		},
		// The budget sanity cap, symmetric with the coordinate cap: the
		// solve path used to forward any int64 budget while the stream
		// path rejected only negatives.
		{
			"negative budget",
			`{"kind":"max-throughput","instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]},"budget":-1}`,
			http.StatusBadRequest, "budget",
		},
		{
			"budget above the sane cap",
			`{"kind":"max-throughput","instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]},"budget":4611686018427387904}`,
			http.StatusBadRequest, "budget",
		},
		{
			"budget overflowing int64",
			`{"kind":"max-throughput","instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]},"budget":1e300}`,
			http.StatusBadRequest, "",
		},
		{
			"negative transition budget",
			`{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]},"transition_budget":-3}`,
			http.StatusBadRequest, "transition budget",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var out map[string]interface{}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("non-JSON error response: %v", err)
			}
			if resp.StatusCode != c.status {
				t.Fatalf("status %d (%v), want %d", resp.StatusCode, out, c.status)
			}
			msg, _ := out["error"].(string)
			if msg == "" {
				t.Fatalf("no structured error in %v", out)
			}
			if c.substr != "" && !strings.Contains(msg, c.substr) {
				t.Errorf("error %q does not mention %q", msg, c.substr)
			}
		})
	}
}

// TestServerBatchMalformedRectItem checks a malformed rect request inside
// a batch fails alone with a structured per-item error (no panic, and no
// poisoning of its siblings).
func TestServerBatchMalformedRectItem(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"requests":[
		{"instance":{"g":2,"jobs":[{"id":0,"start":0,"end":5}]}},
		{"rect":{"g":2,"jobs":[{"id":0,"start1":7,"end1":2,"start2":0,"end2":5}]}},
		{"instance":{"g":2,"jobs":[{"id":0,"start":2,"end":9}]}}
	]}`
	resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with a per-item error", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || !out.Results[0].Certified {
		t.Errorf("healthy sibling 0 failed: %+v", out.Results[0])
	}
	if !strings.Contains(out.Results[1].Error, "end 2 < start 7") {
		t.Errorf("malformed rect item error = %q", out.Results[1].Error)
	}
	if out.Results[2].Error != "" || !out.Results[2].Certified {
		t.Errorf("healthy sibling 2 failed: %+v", out.Results[2])
	}
}
