package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/workload"
)

// killStreamAt opens a journaled stream session, feeds the first k
// arrivals, waits for all k placement events to be confirmed (each one
// durably journaled before it is emitted), and then drops the
// connection without ending the stream — the simulated client crash.
func killStreamAt(t *testing.T, url string, open StreamOpen, jobs []job.Job, k int) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		enc := json.NewEncoder(pw)
		if err := enc.Encode(open); err != nil {
			return
		}
		for _, j := range jobs[:k] {
			if err := enc.Encode(StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
				return
			}
		}
		// Deliberately no pw.Close(): a clean EOF would close the
		// session for good. The crash is the reader dropping the
		// connection below.
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("kill stream: status %s: %s", resp.Status, body)
	}
	dec := json.NewDecoder(resp.Body)
	seen := 0
	for seen < k {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("kill stream: after %d events: %v", seen, err)
		}
		switch ev.Type {
		case StreamEventOpen:
		case StreamEventError:
			t.Fatalf("kill stream: daemon error: %s", ev.Error)
		default:
			seen++
		}
	}
	resp.Body.Close() // the crash
	pw.CloseWithError(io.ErrClosedPipe)
}

// resumeStream resumes a session from seq, sending the given remaining
// arrivals, and returns the open event, all placement events (replayed
// tail included) and the close event. It retries while the server still
// considers the dropped connection active.
func resumeStream(t *testing.T, url, session string, seq int, jobs []job.Job) (StreamEvent, []StreamEvent, StreamEvent) {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, j := range jobs {
		if err := enc.Encode(StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
			t.Fatal(err)
		}
	}
	target := url + "/v1/stream?resume=" + session + "&seq=" + strconv.Itoa(seq)
	var resp *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		resp, err = http.Post(target, "application/x-ndjson", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusConflict && time.Now().Before(deadline) {
			// The server has not yet noticed the dropped connection.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		break
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("resume: status %s: %s", resp.Status, out)
	}
	var openEv StreamEvent
	var events []StreamEvent
	var closeEv *StreamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("resume: decoding event: %v", err)
		}
		switch ev.Type {
		case StreamEventOpen:
			openEv = ev
		case StreamEventError:
			t.Fatalf("resume: daemon error: %s", ev.Error)
		case StreamEventClose:
			e := ev
			closeEv = &e
		default:
			events = append(events, ev)
		}
	}
	if closeEv == nil {
		t.Fatalf("resume: stream ended after %d events without a close event", len(events))
	}
	return openEv, events, *closeEv
}

// TestStreamKillResumeByteEqual is the durable-sessions acceptance test:
// a session interrupted mid-stream and resumed on the same journal must
// produce a close report byte-equal — chain hash included — to the same
// session streamed uninterrupted on a fresh server, and to the offline
// certificate.
func TestStreamKillResumeByteEqual(t *testing.T) {
	const session = "kill-resume-1"
	in := workload.WeightedArrivals(7, workload.Config{N: 120, G: 4, MaxTime: 700, MaxLen: 60})
	open := StreamOpen{G: in.G, Strategy: "online-bestfit", Session: session}
	kill := 47   // interrupt after this many confirmed placements
	replay := 45 // resume from here: the last two events re-emit as tail

	interrupted := newTestServer(t, Config{})
	killStreamAt(t, interrupted.URL, open, in.Jobs, kill)
	openEv, events, closeA := resumeStream(t, interrupted.URL, session, replay, in.Jobs[kill:])

	if !openEv.Resumed || openEv.Session != session {
		t.Fatalf("open event %+v, want resumed session %s", openEv, session)
	}
	if openEv.Arrivals != kill {
		t.Fatalf("resumed at %d journaled arrivals, want %d", openEv.Arrivals, kill)
	}
	for i, ev := range events {
		wantSeq := replay + i
		if ev.Seq != wantSeq {
			t.Fatalf("resumed event %d carries seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if wantReplay := wantSeq < kill; ev.Replay != wantReplay {
			t.Fatalf("seq %d: replay=%v, want %v", wantSeq, ev.Replay, wantReplay)
		}
	}
	if n := len(events); n != len(in.Jobs)-replay {
		t.Fatalf("resumed stream delivered %d events, want %d", n, len(in.Jobs)-replay)
	}

	// The same session, uninterrupted, on a fresh server and store.
	uninterrupted := newTestServer(t, Config{})
	_, closeB := streamInstance(t, uninterrupted.URL, open, in)

	gotA, err := json.Marshal(closeA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := json.Marshal(closeB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, gotB) {
		t.Errorf("interrupted+resumed close diverges from uninterrupted run\n resumed:       %s\n uninterrupted: %s", gotA, gotB)
	}

	// And both match the offline certificate.
	arrs := make([]journal.Arrival, len(in.Jobs))
	for i, j := range in.Jobs {
		arrs[i] = journal.ArrivalOf(j)
	}
	_, cert, err := journal.Certify(session, journal.OpenParams{G: in.G, Strategy: open.Strategy}, arrs)
	if err != nil {
		t.Fatal(err)
	}
	if closeA.Chain != cert.Chain {
		t.Errorf("resumed chain %s, offline certificate %s", closeA.Chain, cert.Chain)
	}

	// The journal endpoint serves the full chain, and it verifies.
	resp, err := http.Get(interrupted.URL + "/v1/stream/journal?session=" + session)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal fetch: status %s", resp.Status)
	}
	recs, err := journal.DecodeRecords(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	served, err := journal.Verify(recs)
	if err != nil {
		t.Fatalf("served journal does not verify: %v", err)
	}
	if served.Chain != closeA.Chain {
		t.Errorf("served journal chain %s, close event chain %s", served.Chain, closeA.Chain)
	}
}

// TestStreamResumeErrors exercises the resume-time failure modes, which
// are all pre-stream and therefore plain HTTP statuses.
func TestStreamResumeErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	in := workload.Arrivals(3, workload.Config{N: 20, G: 2, MaxTime: 200, MaxLen: 20})
	open := StreamOpen{G: in.G, Strategy: "online-firstfit", Session: "finished-1"}
	if _, closeEv := streamInstance(t, ts.URL, open, in); closeEv.Chain == "" {
		t.Fatal("setup stream closed without a chain hash")
	}

	cases := []struct {
		name   string
		query  string
		status int
	}{
		{"unknown session", "?resume=never-opened&seq=0", http.StatusNotFound},
		{"invalid session id", "?resume=bad%21id&seq=0", http.StatusBadRequest},
		{"invalid seq", "?resume=finished-1&seq=abc", http.StatusBadRequest},
		{"negative seq", "?resume=finished-1&seq=-1", http.StatusBadRequest},
		{"closed session", "?resume=finished-1&seq=0", http.StatusConflict},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/stream"+c.query, "application/x-ndjson", strings.NewReader(""))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Errorf("status %d, want %d", resp.StatusCode, c.status)
			}
		})
	}

	// Reopening a closed session id is a conflict pointing at resume.
	_, _, err := streamInstanceErr(ts.URL, open, in)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("reopening a journaled session id: %v, want a 409 conflict", err)
	}

	// A resume seq beyond the journaled arrivals is a bad request: kill a
	// session mid-stream so an open (resumable) journal exists.
	openKill := StreamOpen{G: in.G, Strategy: "online-firstfit", Session: "hanging-1"}
	killStreamAt(t, ts.URL, openKill, in.Jobs, 5)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/stream?resume=hanging-1&seq=9999", "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("over-long resume seq: status %d, want 400", resp.StatusCode)
		}
		break
	}
}

// TestStreamJournalEndpointErrors covers the journal fetch endpoint's
// error statuses.
func TestStreamJournalEndpointErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, c := range []struct {
		query  string
		status int
	}{
		{"?session=never-opened", http.StatusNotFound},
		{"?session=", http.StatusBadRequest},
		{"?session=bad%21id", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/v1/stream/journal" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.query, resp.StatusCode, c.status)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream/journal?session=x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST journal: status %d, want 405", resp.StatusCode)
	}
}
