package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	busytime "repro"
	"repro/internal/job"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func properInstance(seed int64, n int) *job.Instance {
	in := workload.Proper(seed, workload.Config{N: n, G: 3, MaxTime: 400, MaxLen: 60})
	return &in
}

// TestServerEndToEndMixedBatch is the acceptance e2e: a mixed-kind batch
// over real HTTP, every returned certificate verified — both the
// server-side verdict and a client-side re-derivation from the returned
// machine assignment.
func TestServerEndToEndMixedBatch(t *testing.T) {
	ts := newTestServer(t, Config{})

	minbusy := properInstance(1, 14)
	clique := workload.Clique(2, workload.Config{N: 10, G: 2, MaxTime: 400, MaxLen: 60})
	online := properInstance(3, 12)
	rect := RectInstance{G: 2, Jobs: []RectJob{
		{ID: 0, Start1: 0, End1: 4, Start2: 0, End2: 2},
		{ID: 1, Start1: 2, End1: 6, Start2: 1, End2: 3},
		{ID: 2, Start1: 5, End1: 9, Start2: 0, End2: 2},
	}}
	batch := BatchRequest{Requests: []Request{
		{Instance: minbusy},
		{Kind: "max-throughput", Instance: &clique, Budget: clique.TotalLen()},
		{Kind: "online", Instance: online},
		{Rect: &rect},
	}}

	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(out.Results) != len(batch.Requests) {
		t.Fatalf("got %d results for %d requests", len(out.Results), len(batch.Requests))
	}
	wantKinds := []string{"min-busy", "max-throughput", "online", "min-busy-2d"}
	instances := []*job.Instance{minbusy, &clique, online, nil}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("request %d failed: %s", i, res.Error)
		}
		if res.Kind != wantKinds[i] {
			t.Fatalf("request %d: kind %q, want %q", i, res.Kind, wantKinds[i])
		}
		if !res.Certified || res.CertificateError != "" {
			t.Fatalf("request %d not certified: %s", i, res.CertificateError)
		}
		if res.Cost < res.LowerBound {
			t.Fatalf("request %d: cost %d below lower bound %d", i, res.Cost, res.LowerBound)
		}
		// Client-side re-verification from the wire assignment.
		if in := instances[i]; in != nil {
			sch := busytime.Schedule{Instance: *in, Machine: res.Machine}
			local := busytime.ResultOf(res.Algorithm, sch)
			if cerr := local.Certificate(); cerr != nil {
				t.Fatalf("request %d: client-side certificate: %v", i, cerr)
			}
			if local.Cost != res.Cost {
				t.Fatalf("request %d: wire cost %d != recomputed %d", i, res.Cost, local.Cost)
			}
		}
	}
}

func TestServerSolveSingle(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(5, 12)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Certified || res.Algorithm == "" || res.N != 12 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestServerSolveErrors(t *testing.T) {
	ts := newTestServer(t, Config{})

	// Unknown kind → 400.
	resp, _ := postJSON(t, ts.URL+"/v1/solve", map[string]interface{}{"kind": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", resp.StatusCode)
	}

	// Malformed JSON → 400.
	r2, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", r2.StatusCode)
	}

	// Invalid instance (g = 0 fails wire validation) → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/solve", map[string]interface{}{
		"instance": map[string]interface{}{"g": 0, "jobs": []interface{}{}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid instance: status %d, want 400", resp.StatusCode)
	}

	// Negative budget is now stopped at the wire codec → 400 (the
	// symmetric sanity cap; see TestWireBudgetCaps).
	resp, _ = postJSON(t, ts.URL+"/v1/solve", Request{
		Kind: "max-throughput", Instance: properInstance(6, 8), Budget: -5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative budget: status %d, want 400", resp.StatusCode)
	}

	// Solver-level rejection (a BaseID warm start only exists for
	// min-busy) → 422 with the error inline.
	resp, body := postJSON(t, ts.URL+"/v1/solve", Request{
		Kind: "max-throughput", Instance: properInstance(6, 8), BaseID: "r-1-x",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("solver rejection: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Error == "" {
		t.Fatal("solver rejection carried no error")
	}
}

func TestServerInstanceTooLarge(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 4})

	resp, _ := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(1, 10)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized single: status %d, want 413", resp.StatusCode)
	}

	// In a batch the oversized item fails alone.
	batch := BatchRequest{Requests: []Request{
		{Instance: properInstance(2, 3)},
		{Instance: properInstance(3, 10)},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != "" || !out.Results[0].Certified {
		t.Fatalf("healthy item poisoned: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatal("oversized batch item reported no error")
	}
}

// TestServerBatchMalformedItem posts a batch whose middle item fails
// instance validation at decode time (g = 0): it must fail alone — the
// wire codec validates eagerly, so the server decodes batch items
// individually rather than letting one abort the whole batch decode.
func TestServerBatchMalformedItem(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"requests": [
		{"instance": {"g": 2, "jobs": [{"id": 0, "start": 0, "end": 10}]}},
		{"instance": {"g": 0, "jobs": []}},
		{"instance": {"g": 2, "jobs": [{"id": 0, "start": 3, "end": 8}]}}]}`
	resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Error != "" || !out.Results[i].Certified {
			t.Fatalf("healthy item %d poisoned: %+v", i, out.Results[i])
		}
	}
	if !strings.Contains(out.Results[1].Error, "positive g") {
		t.Fatalf("malformed item error %q, want instance validation failure", out.Results[1].Error)
	}
}

func TestServerBatchTooLong(t *testing.T) {
	ts := newTestServer(t, Config{MaxBatch: 2})
	batch := BatchRequest{Requests: []Request{
		{Instance: properInstance(1, 4)},
		{Instance: properInstance(2, 4)},
		{Instance: properInstance(3, 4)},
	}}
	resp, _ := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestServerOverloadAdmission holds one slow exact solve in flight and
// checks the next request is refused with 429.
func TestServerOverloadAdmission(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 1})

	slow := workload.General(3, workload.Config{N: 18, G: 3, MaxTime: 500, MaxLen: 80})
	slowBody, err := json.Marshal(BatchRequest{
		Algorithm: "exact",
		Requests:  []Request{{Instance: &slow, TimeoutMS: 30_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	defer cancelSlow()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, _ := http.NewRequestWithContext(slowCtx, http.MethodPost,
			ts.URL+"/v1/solve/batch", bytes.NewReader(slowBody))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the slow solve to be admitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("slow request never showed up in busyd_in_flight")
		}
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(text), "busyd_in_flight 1") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(1, 4)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}

	cancelSlow()
	<-slowDone

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(text), `busyd_rejected_total{reason="overload"} 1`) {
		t.Fatalf("overload rejection not counted:\n%s", text)
	}
}

func TestServerAlgorithmsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var algs []AlgorithmInfo
	if err := json.NewDecoder(resp.Body).Decode(&algs); err != nil {
		t.Fatal(err)
	}
	if len(algs) != len(busytime.Algorithms()) {
		t.Fatalf("served %d algorithms, registry has %d", len(algs), len(busytime.Algorithms()))
	}
	found := false
	for _, a := range algs {
		if a.Name == "first-fit" && a.Kind == "min-busy" {
			found = true
		}
	}
	if !found {
		t.Fatal("first-fit missing from /v1/algorithms")
	}
}

func TestServerHealthAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(ok)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, ok)
	}

	postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(1, 6)})
	postJSON(t, ts.URL+"/v1/solve/batch", BatchRequest{Requests: []Request{
		{Instance: properInstance(2, 6)}, {Instance: properInstance(3, 6)},
	}})

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`busyd_requests_total{endpoint="solve"} 1`,
		`busyd_requests_total{endpoint="batch"} 1`,
		"busyd_batch_instances_total 2",
		"busyd_in_flight 0",
		`busyd_solve_latency_seconds_count{algorithm=`,
		`busyd_batch_latency_seconds_count{algorithm="auto"} 1`,
		"busyd_batch_size_count 1",
		`busyd_solve_phase_seconds_count{algorithm=`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServerReoptCacheCounters drives the three reoptimization outcomes
// over real HTTP — cold miss, exact-form hit, near-hit repair — and
// asserts the X-Busytime-Cache header, the wire result fields, and the
// /metrics counters advancing in step.
func TestServerReoptCacheCounters(t *testing.T) {
	ts := newTestServer(t, Config{})

	in := job.Instance{G: 2}
	for i := 0; i < 16; i++ {
		in.Jobs = append(in.Jobs, job.New(i, int64(i*5), int64(i*5+10)))
	}

	solve := func(req Request, wantCache string) Result {
		t.Helper()
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Busytime-Cache"); got != wantCache {
			t.Fatalf("X-Busytime-Cache = %q, want %q", got, wantCache)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.Cache != wantCache {
			t.Fatalf("result cache = %q, want %q", res.Cache, wantCache)
		}
		if !res.Certified {
			t.Fatalf("%s result not certified: %s", wantCache, res.CertificateError)
		}
		return res
	}

	cold := solve(Request{Instance: &in}, "miss")
	if cold.ID == "" {
		t.Fatal("miss carried no result ID")
	}
	hit := solve(Request{Instance: &in}, "hit")
	if hit.ID != cold.ID || hit.Cost != cold.Cost {
		t.Fatalf("hit (id %q cost %d) does not match cold (id %q cost %d)",
			hit.ID, hit.Cost, cold.ID, cold.Cost)
	}
	// One added job, origin untouched: a near-hit served via repair.
	mod := in.Clone()
	mod.Jobs = append(mod.Jobs, job.New(900, 3, 12))
	rep := solve(Request{Instance: &mod}, "repair")
	if rep.BaseID != cold.ID {
		t.Errorf("repair base_id = %q, want %q", rep.BaseID, cold.ID)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`busyd_reopt_total{outcome="hit"} 1`,
		`busyd_reopt_total{outcome="repair"} 1`,
		`busyd_reopt_total{outcome="miss"} 1`,
		"busyd_reopt_transition_jobs_count 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServerReoptDisabled: a negative ReoptCache turns the cache off —
// no header, no wire cache fields.
func TestServerReoptDisabled(t *testing.T) {
	ts := newTestServer(t, Config{ReoptCache: -1})
	resp, body := postJSON(t, ts.URL+"/v1/solve", Request{Instance: properInstance(9, 8)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Busytime-Cache"); got != "" {
		t.Fatalf("X-Busytime-Cache = %q with cache disabled", got)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "" || res.Cache != "" {
		t.Fatalf("cache fields set with cache disabled: id=%q cache=%q", res.ID, res.Cache)
	}
}

// TestServerGracefulDrain cancels the run context mid-flight: Serve must
// stop accepting, let the in-flight request finish, and return nil.
func TestServerGracefulDrain(t *testing.T) {
	s, err := New(Config{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Server is up.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after ctx cancellation")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting after drain")
	}
}

// TestServerBatchAlgorithmOverride pins the batch algorithm and checks
// both the override and the unknown-name failure mode.
func TestServerBatchAlgorithmOverride(t *testing.T) {
	ts := newTestServer(t, Config{})
	batch := BatchRequest{Algorithm: "first-fit", Requests: []Request{
		{Instance: properInstance(1, 10)},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Algorithm != "first-fit" {
		t.Fatalf("algorithm %q, want pinned first-fit", out.Results[0].Algorithm)
	}

	batch.Algorithm = "no-such-algorithm"
	resp, _ = postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d, want 400", resp.StatusCode)
	}
}

// TestServerPerRequestDeadline gives a slow exact request a tiny
// timeout_ms inside a healthy batch: it must fail alone.
func TestServerPerRequestDeadline(t *testing.T) {
	ts := newTestServer(t, Config{})
	slow := workload.General(3, workload.Config{N: 17, G: 3, MaxTime: 500, MaxLen: 80})
	batch := BatchRequest{Algorithm: "exact", Requests: []Request{
		{Instance: properInstance(1, 8)},
		{Instance: &slow, TimeoutMS: 1},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != "" || !out.Results[0].Certified {
		t.Fatalf("healthy request failed: %+v", out.Results[0])
	}
	if !strings.Contains(out.Results[1].Error, "deadline") {
		t.Fatalf("slow request error %q, want deadline", out.Results[1].Error)
	}
}

// TestWireRectRoundTrip checks the 2-D wire codec.
func TestWireRectRoundTrip(t *testing.T) {
	in := job.RectInstance{G: 3, Jobs: []job.RectJob{
		job.NewRectJob(0, 1, 5, 2, 6),
		job.NewRectJob(1, 0, 2, 0, 9),
	}}
	wire := WireRect(in)
	back, err := wire.ToRectInstance()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 || back.G != 3 || back.Jobs[1].Rect.D2.End != 9 {
		t.Fatalf("round trip mangled the instance: %+v", back)
	}
	if _, err := (RectInstance{G: 0}).ToRectInstance(); err == nil {
		t.Fatal("invalid rect instance passed validation")
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]busytime.ProblemKind{
		"":               busytime.KindMinBusy,
		"min-busy":       busytime.KindMinBusy,
		"max-throughput": busytime.KindMaxThroughput,
		"min-busy-2d":    busytime.KindMinBusy2D,
		"online":         busytime.KindOnline,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// TestServerConcurrentBatches hammers the daemon with concurrent batches
// under -race to shake out handler races.
func TestServerConcurrentBatches(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			batch := BatchRequest{Requests: []Request{
				{Instance: properInstance(int64(c), 10)},
				{Instance: properInstance(int64(c+100), 12)},
			}}
			data, _ := json.Marshal(batch)
			resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			var out BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			for i, res := range out.Results {
				if !res.Certified {
					errs <- fmt.Errorf("client %d result %d uncertified: %s", c, i, res.Error)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
