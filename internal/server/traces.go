package server

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/online"
	"repro/internal/safemath"
	"repro/internal/trace"
)

// TraceEntry is one served request in the /debug/traces ring: identity,
// the coarse fields the endpoint filters on, and the full span tree.
type TraceEntry struct {
	// Seq is the ring's monotone admission number; newer entries have
	// larger Seq, and eviction drops the smallest live one.
	Seq        uint64      `json:"seq"`
	TS         string      `json:"ts"`
	Endpoint   string      `json:"endpoint"`
	Algorithm  string      `json:"algorithm,omitempty"`
	TraceID    string      `json:"trace_id"`
	DurationMS float64     `json:"duration_ms"`
	Trace      *trace.Node `json:"trace"`
}

// TracesResponse is the JSON body of GET /debug/traces.
type TracesResponse struct {
	Traces []*TraceEntry `json:"traces"`
}

// traceRing keeps the last N root spans the daemon served. Writers
// claim a monotone sequence number and publish into seq mod N; readers
// load each slot with one atomic pointer load — no lock on either side,
// so a slow /debug/traces scrape never stalls the serving path.
type traceRing struct {
	slots []atomic.Pointer[TraceEntry]
	seq   atomic.Uint64
}

func newTraceRing(n int) *traceRing {
	return &traceRing{slots: make([]atomic.Pointer[TraceEntry], n)}
}

// add publishes e, evicting the oldest entry once the ring is full. The
// entry must not be mutated after add.
func (r *traceRing) add(e *TraceEntry) {
	seq := r.seq.Add(1)
	e.Seq = seq
	r.slots[int((seq-1)%uint64(len(r.slots)))].Store(e)
}

// snapshot returns the live entries newest-first. Concurrent adds may
// land or not — each slot read is independently atomic, so every
// returned entry is complete.
func (r *traceRing) snapshot() []*TraceEntry {
	out := make([]*TraceEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// startTrace opens the root "request" span for one served request.
// Serving is always-on sampling: every request is traced into the ring
// and the phase histograms whether or not the client asked. A valid
// incoming W3C traceparent header joins the client's trace (its ids
// become the root's trace id and remote parent) and opts the client
// into seeing the span tree in the response body — that is the echo
// return. The root span's End is the caller's job: it outlives this
// function on purpose.
func (s *Server) startTrace(r *http.Request, endpoint string) (context.Context, *trace.Span, bool) {
	ctx := r.Context()
	echo := false
	if tp := r.Header.Get(trace.TraceparentHeader); tp != "" {
		if tid, pid, err := trace.ParseTraceparent(tp); err == nil {
			ctx = trace.EnableRemote(ctx, tid, pid)
			echo = true
		}
	}
	if !echo {
		ctx = trace.Enable(ctx)
	}
	//lint:ignore busylint/spanend the root request span outlives this helper; every handler defers its End
	ctx, root := trace.Start(ctx, "request")
	root.SetAttr("endpoint", endpoint)
	return ctx, root, echo
}

// finishTrace ends the root span, snapshots the tree, records it in
// the ring and emits the slow-solve log line when the request crossed
// the threshold. The returned node is what handlers echo to clients
// that sent a traceparent. Extra nodes (the stream's synthesized stage
// aggregates) are grafted onto the root before it is published, so the
// ring entry is never mutated after readers can see it.
func (s *Server) finishTrace(root *trace.Span, endpoint, algorithm string, extra ...*trace.Node) *trace.Node {
	root.SetAttr("algorithm", algorithm)
	root.End()
	node := root.Snapshot()
	if node == nil {
		return nil
	}
	node.Children = append(node.Children, extra...)
	s.traces.add(&TraceEntry{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:   endpoint,
		Algorithm:  algorithm,
		TraceID:    node.TraceID,
		DurationMS: float64(node.DurationNS) / 1e6,
		Trace:      node,
	})
	if s.cfg.SlowSolve > 0 && node.Duration() >= s.cfg.SlowSolve {
		s.reqlog.log(logEntry{Kind: "slow_solve", Outcome: endpoint, Algorithm: algorithm,
			DurationNS: node.DurationNS, PhaseNS: phaseDurations(node)})
	}
	return node
}

// structuralSpans are the span names that group phases rather than
// measure one: they are excluded from the per-phase histograms and the
// slow-solve phase breakdown (their time is their children's).
var structuralSpans = map[string]bool{"request": true, "solve": true, "batch": true}

// phaseDurations flattens a span tree into phase-name → total
// nanoseconds, summing repeated phases (e.g. per-component placements).
func phaseDurations(node *trace.Node) map[string]int64 {
	phases := map[string]int64{}
	node.Walk(func(n *trace.Node) {
		if !structuralSpans[n.Name] {
			phases[n.Name] = safemath.SatAdd(phases[n.Name], n.DurationNS)
		}
	})
	return phases
}

// stageNodes synthesizes the close-report trace children of a streamed
// session: one aggregate node per serving stage, summed over every
// confirmed arrival. They are aggregates of overlapping per-arrival
// intervals, not nested sub-spans, so they are marked as such and
// exempt from the children-sum-≤-root invariant. The "stage." prefix
// keeps them clear of the solver's own phase names.
func stageNodes(st *online.StageStats) []*trace.Node {
	if st.Arrivals == 0 {
		return nil
	}
	mk := func(name string, ns int64) *trace.Node {
		return &trace.Node{Name: name, DurationNS: ns, Attrs: map[string]string{
			"aggregate": "true", "arrivals": strconv.Itoa(st.Arrivals),
		}}
	}
	return []*trace.Node{mk("stage.queue", st.QueueNS), mk("stage.flush", st.FlushNS), mk("stage.solve", st.SolveNS)}
}

// handleTraces serves GET /debug/traces: the ring's root spans newest
// first as JSON, filterable by ?min_ms= (duration floor), ?algorithm=
// (exact label match) and ?limit= (result cap).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsTraces.Add(1)
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("server: GET only"))
		return
	}
	q := r.URL.Query()
	minMS := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, errors.New("server: min_ms must be a non-negative number"))
			return
		}
		minMS = f
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, errors.New("server: limit must be a non-negative integer"))
			return
		}
		limit = n
	}
	algorithm := q.Get("algorithm")

	entries := s.traces.snapshot()
	filtered := make([]*TraceEntry, 0, len(entries))
	for _, e := range entries {
		if e.DurationMS < minMS {
			continue
		}
		if algorithm != "" && e.Algorithm != algorithm {
			continue
		}
		filtered = append(filtered, e)
		if limit > 0 && len(filtered) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: filtered})
}
