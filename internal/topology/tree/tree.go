// Package tree implements the Section 5 extension of Observation 3.1 to
// tree topologies.
//
// In the optical reading, jobs are paths in a tree network and a
// regenerator placed on an edge can be shared by at most g paths
// (grooming). The one-sided clique structure of Observation 3.1 — every
// job contained in the currently longest job — generalizes to paths: the
// paper's greedy maintains multiple "current sets", each identified by its
// opening (longest) path, assigns each new path to the fullest compatible
// set (opening path contains it, fewer than g members), and opens a new
// set otherwise. The cost of a set is the length of its opening path.
package tree

import (
	"fmt"
	"sort"
)

// Tree is an undirected tree with positive integer edge lengths. Nodes are
// 0..N-1; node 0 is the root used for path decomposition.
type Tree struct {
	n      int
	parent []int
	plen   []int64 // length of the edge to parent
	depth  []int
	dist   []int64 // distance from root
}

// Edge connects two nodes with a positive length.
type Edge struct {
	U, V   int
	Length int64
}

// New builds a tree from exactly n−1 edges. It verifies connectivity and
// acyclicity.
func New(n int, edges []Edge) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("tree: need at least one node")
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("tree: %d nodes need %d edges, got %d", n, n-1, len(edges))
	}
	adj := make([][]Edge, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return nil, fmt.Errorf("tree: bad edge %+v", e)
		}
		if e.Length < 1 {
			return nil, fmt.Errorf("tree: edge %+v has non-positive length", e)
		}
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, Length: e.Length})
	}
	t := &Tree{
		n:      n,
		parent: make([]int, n),
		plen:   make([]int64, n),
		depth:  make([]int, n),
		dist:   make([]int64, n),
	}
	for i := range t.parent {
		t.parent[i] = -1
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, e := range adj[v] {
			if !visited[e.V] {
				visited[e.V] = true
				t.parent[e.V] = v
				t.plen[e.V] = e.Length
				t.depth[e.V] = t.depth[v] + 1
				t.dist[e.V] = t.dist[v] + e.Length
				stack = append(stack, e.V)
			}
		}
	}
	if count != n {
		return nil, fmt.Errorf("tree: graph is not connected")
	}
	return t, nil
}

// N returns the number of nodes.
func (t *Tree) N() int { return t.n }

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v int) int {
	for t.depth[u] > t.depth[v] {
		u = t.parent[u]
	}
	for t.depth[v] > t.depth[u] {
		v = t.parent[v]
	}
	for u != v {
		u = t.parent[u]
		v = t.parent[v]
	}
	return u
}

// Path is a simple path between two nodes, stored as its edge set (each
// edge keyed by its child endpoint in the rooted tree).
type Path struct {
	A, B   int
	edges  map[int]bool
	length int64
}

// PathBetween returns the unique tree path between a and b.
func (t *Tree) PathBetween(a, b int) Path {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("tree: PathBetween(%d, %d) out of range", a, b))
	}
	l := t.LCA(a, b)
	p := Path{A: a, B: b, edges: map[int]bool{}}
	for v := a; v != l; v = t.parent[v] {
		p.edges[v] = true
		p.length += t.plen[v]
	}
	for v := b; v != l; v = t.parent[v] {
		p.edges[v] = true
		p.length += t.plen[v]
	}
	return p
}

// Length returns the total edge length of the path.
func (p Path) Length() int64 { return p.length }

// Contains reports whether q's edges are a subset of p's.
func (p Path) Contains(q Path) bool {
	if len(q.edges) > len(p.edges) {
		return false
	}
	for e := range q.edges {
		if !p.edges[e] {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two paths share at least one edge.
func (p Path) Overlaps(q Path) bool {
	small, large := p, q
	if len(q.edges) < len(p.edges) {
		small, large = q, p
	}
	for e := range small.edges {
		if large.edges[e] {
			return true
		}
	}
	return false
}

// Request is a path job to be groomed.
type Request struct {
	ID   int
	Path Path
}

// Assignment is the grooming result: Group[i] is the set index of request
// i; Cost is the total regenerator cost (sum over sets of the opening
// path's length).
type Assignment struct {
	Group []int
	Cost  int64
	Sets  [][]int // request indices per set, opening request first
}

// GreedyGroom runs the Section 5 greedy on laminar ("one-sided") request
// families: processes requests in non-increasing path length, maintains
// current sets identified by their opening path, assigns each request to
// the fullest compatible current set (opening contains the request, fewer
// than g members), and opens a new set otherwise.
//
// When every request is contained in a common longest path (the tree
// analogue of a one-sided clique), the result is optimal by the same
// exchange argument as Observation 3.1, applied per containment chain.
func GreedyGroom(reqs []Request, g int) Assignment {
	if g < 1 {
		panic("tree: GreedyGroom needs g >= 1")
	}
	n := len(reqs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Path.Length() > reqs[order[b]].Path.Length()
	})

	asg := Assignment{Group: make([]int, n)}
	type set struct {
		opening Path
		members []int
	}
	var sets []set
	for _, ri := range order {
		r := reqs[ri]
		best := -1
		for si := range sets {
			if len(sets[si].members) >= g {
				continue
			}
			if !sets[si].opening.Contains(r.Path) {
				continue
			}
			if best == -1 || len(sets[si].members) > len(sets[best].members) {
				best = si
			}
		}
		if best == -1 {
			sets = append(sets, set{opening: r.Path, members: []int{ri}})
			best = len(sets) - 1
		} else {
			sets[best].members = append(sets[best].members, ri)
		}
		asg.Group[ri] = best
	}
	for _, s := range sets {
		asg.Cost += s.opening.Length()
		asg.Sets = append(asg.Sets, s.members)
	}
	return asg
}

// LaminarLowerBound returns the busy-time lower bound for a laminar
// request family: max over edges of ceil(load(e)/g) summed... more simply,
// the parallelism bound Σ len(path)/g rounded up, which is valid on any
// topology.
func LaminarLowerBound(reqs []Request, g int) int64 {
	var total int64
	for _, r := range reqs {
		total += r.Path.Length()
	}
	return (total + int64(g) - 1) / int64(g)
}
