package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// star builds a star tree with k leaves and unit edges.
func star(t *testing.T, k int) *Tree {
	t.Helper()
	edges := make([]Edge, k)
	for i := 0; i < k; i++ {
		edges[i] = Edge{U: 0, V: i + 1, Length: 1}
	}
	tr, err := New(k+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// line builds a path graph 0-1-2-...-n-1 with given edge lengths.
func line(t *testing.T, lengths ...int64) *Tree {
	t.Helper()
	edges := make([]Edge, len(lengths))
	for i, l := range lengths {
		edges[i] = Edge{U: i, V: i + 1, Length: l}
	}
	tr, err := New(len(lengths)+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := New(3, []Edge{{0, 1, 1}}); err == nil {
		t.Error("accepted wrong edge count")
	}
	if _, err := New(3, []Edge{{0, 1, 1}, {0, 1, 1}}); err == nil {
		t.Error("accepted disconnected multigraph")
	}
	if _, err := New(2, []Edge{{0, 1, 0}}); err == nil {
		t.Error("accepted zero-length edge")
	}
	if _, err := New(2, []Edge{{0, 0, 1}}); err == nil {
		t.Error("accepted self-loop")
	}
}

func TestPathBetween(t *testing.T) {
	tr := line(t, 3, 4, 5) // 0-3-1-4-2-5-3
	p := tr.PathBetween(0, 3)
	if p.Length() != 12 {
		t.Errorf("length = %d, want 12", p.Length())
	}
	q := tr.PathBetween(1, 2)
	if q.Length() != 4 {
		t.Errorf("length = %d, want 4", q.Length())
	}
	if !p.Contains(q) {
		t.Error("full path should contain middle segment")
	}
	if q.Contains(p) {
		t.Error("middle segment should not contain full path")
	}
}

func TestPathThroughLCA(t *testing.T) {
	tr := star(t, 3)
	p := tr.PathBetween(1, 2) // leaf to leaf through center
	if p.Length() != 2 {
		t.Errorf("length = %d, want 2", p.Length())
	}
	q := tr.PathBetween(1, 3)
	if !p.Overlaps(q) {
		t.Error("paths sharing edge 0-1 should overlap")
	}
	r := tr.PathBetween(2, 0)
	s := tr.PathBetween(1, 0)
	if r.Overlaps(s) {
		t.Error("edge-disjoint spokes should not overlap")
	}
}

func TestPathSameNode(t *testing.T) {
	tr := star(t, 2)
	p := tr.PathBetween(1, 1)
	if p.Length() != 0 {
		t.Errorf("trivial path length = %d", p.Length())
	}
}

func TestGreedyGroomLaminarOptimal(t *testing.T) {
	// Line 0-1-2-3-4, unit edges. Requests: full path [0,4] x2, [0,2] x2,
	// [0,1] x2. g=2. Nested laminar family: greedy fills the longest set
	// first. Optimal with g=2: pair equal requests: cost 4+2+1 = 7.
	tr := line(t, 1, 1, 1, 1)
	reqs := []Request{
		{0, tr.PathBetween(0, 4)},
		{1, tr.PathBetween(0, 4)},
		{2, tr.PathBetween(0, 2)},
		{3, tr.PathBetween(0, 2)},
		{4, tr.PathBetween(0, 1)},
		{5, tr.PathBetween(0, 1)},
	}
	asg := GreedyGroom(reqs, 2)
	if asg.Cost != 7 {
		t.Errorf("cost = %d, want 7 (sets %v)", asg.Cost, asg.Sets)
	}
}

func TestGreedyGroomFillsFullestSet(t *testing.T) {
	// One long opening path can absorb g-1 short ones.
	tr := line(t, 1, 1, 1)
	reqs := []Request{
		{0, tr.PathBetween(0, 3)},
		{1, tr.PathBetween(0, 1)},
		{2, tr.PathBetween(1, 2)},
	}
	asg := GreedyGroom(reqs, 3)
	if asg.Cost != 3 {
		t.Errorf("cost = %d, want 3 (single set)", asg.Cost)
	}
	if len(asg.Sets) != 1 {
		t.Errorf("sets = %v", asg.Sets)
	}
}

func TestGreedyGroomRespectsG(t *testing.T) {
	tr := star(t, 2)
	p := tr.PathBetween(1, 2)
	reqs := []Request{{0, p}, {1, p}, {2, p}}
	asg := GreedyGroom(reqs, 2)
	if len(asg.Sets) != 2 {
		t.Errorf("three identical paths at g=2 need 2 sets, got %v", asg.Sets)
	}
	if asg.Cost != 4 {
		t.Errorf("cost = %d, want 4", asg.Cost)
	}
}

func TestGreedyGroomIncompatiblePaths(t *testing.T) {
	// Spokes of a star are pairwise non-containing: each opens a set.
	tr := star(t, 3)
	reqs := []Request{
		{0, tr.PathBetween(0, 1)},
		{1, tr.PathBetween(0, 2)},
		{2, tr.PathBetween(0, 3)},
	}
	asg := GreedyGroom(reqs, 3)
	if len(asg.Sets) != 3 || asg.Cost != 3 {
		t.Errorf("cost = %d sets = %v", asg.Cost, asg.Sets)
	}
}

func TestGreedyGroomPanicsOnBadG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("g=0 accepted")
		}
	}()
	GreedyGroom(nil, 0)
}

// randomTree builds a random tree with n nodes and random edge lengths.
func randomTree(r *rand.Rand, n int) (*Tree, error) {
	edges := make([]Edge, n-1)
	for v := 1; v < n; v++ {
		edges[v-1] = Edge{U: r.Intn(v), V: v, Length: 1 + r.Int63n(9)}
	}
	return New(n, edges)
}

// Property: on arbitrary random trees with arbitrary requests, the greedy
// produces structurally sound assignments: every member is contained in
// its set's opening path, set sizes respect g, the reported cost equals
// the sum of opening lengths, and the parallelism lower bound holds.
func TestPropertyGreedyStructureOnRandomTrees(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		m := int(mRaw%15) + 1
		g := int(gRaw%4) + 1
		tr, err := randomTree(r, n)
		if err != nil {
			return false
		}
		reqs := make([]Request, 0, m)
		for i := 0; i < m; i++ {
			a, b := r.Intn(n), r.Intn(n)
			p := tr.PathBetween(a, b)
			if p.Length() == 0 {
				continue // trivial paths carry no load
			}
			reqs = append(reqs, Request{ID: i, Path: p})
		}
		asg := GreedyGroom(reqs, g)
		if len(asg.Group) != len(reqs) {
			return false
		}
		var cost int64
		for _, members := range asg.Sets {
			if len(members) == 0 || len(members) > g {
				return false
			}
			opening := reqs[members[0]].Path
			for _, ri := range members[1:] {
				if !opening.Contains(reqs[ri].Path) {
					return false
				}
				if reqs[ri].Path.Length() > opening.Length() {
					return false
				}
			}
			cost += opening.Length()
		}
		if cost != asg.Cost {
			return false
		}
		return asg.Cost >= LaminarLowerBound(reqs, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: on a star with long spokes, requests from the hub form
// per-spoke laminar chains; greedy must never mix spokes in one set.
func TestGreedySpokesStayDisjoint(t *testing.T) {
	tr := star(t, 4)
	var reqs []Request
	for leaf := 1; leaf <= 4; leaf++ {
		for k := 0; k < 3; k++ {
			reqs = append(reqs, Request{ID: len(reqs), Path: tr.PathBetween(0, leaf)})
		}
	}
	asg := GreedyGroom(reqs, 3)
	for _, members := range asg.Sets {
		first := reqs[members[0]].Path
		for _, ri := range members {
			if !first.Contains(reqs[ri].Path) || !reqs[ri].Path.Contains(first) {
				t.Fatalf("set mixes different spokes: %v", members)
			}
		}
	}
	if asg.Cost != 4 {
		t.Errorf("cost = %d, want 4 (one unit-length set per spoke)", asg.Cost)
	}
}

// Property: on a random laminar family over a line (all requests start at
// node 0, the tree analogue of a one-sided instance), greedy cost matches
// the one-sided optimum: sort lengths descending, sum every g-th.
func TestPropertyGreedyMatchesOneSidedOptimum(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 1
		g := int(gRaw%4) + 1
		// Line with 20 unit edges; request i spans [0, 1+rand(20)).
		lengths := make([]int64, 20)
		for i := range lengths {
			lengths[i] = 1
		}
		edges := make([]Edge, 20)
		for i := range edges {
			edges[i] = Edge{U: i, V: i + 1, Length: 1}
		}
		tr, err := New(21, edges)
		if err != nil {
			return false
		}
		reqs := make([]Request, n)
		lens := make([]int64, n)
		for i := range reqs {
			end := 1 + r.Intn(20)
			reqs[i] = Request{ID: i, Path: tr.PathBetween(0, end)}
			lens[i] = int64(end)
		}
		asg := GreedyGroom(reqs, g)
		// One-sided optimum: descending lengths, sum of every g-th.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if lens[j] > lens[i] {
					lens[i], lens[j] = lens[j], lens[i]
				}
			}
		}
		var want int64
		for i := 0; i < n; i += g {
			want += lens[i]
		}
		if asg.Cost != want {
			return false
		}
		return asg.Cost >= LaminarLowerBound(reqs, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
