// Package ring implements the Section 5 extension of Theorem 3.3 to ring
// topologies: jobs are communication requests on a ring optical network,
// each occupying an arc of the ring for a time interval — a rectangle on a
// cylinder. FirstFit and BucketFirstFit carry over because Lemma 3.4's
// bounding-rectangle argument is local and the span/parallelism bounds are
// topology-independent.
//
// Arcs wrap modulo the ring circumference C. Internally a wrapped arc is
// unrolled into at most two plain rectangles over [0, C), reusing the 1-D
// and 2-D measure machinery.
package ring

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rect"
)

// Arc is a directed arc on a ring of circumference C, starting at Start
// (0 ≤ Start < C) and extending clockwise for Length (1 ≤ Length ≤ C).
type Arc struct {
	Start  int64
	Length int64
}

// Job occupies an arc of the ring during a time interval [TStart, TEnd).
type Job struct {
	ID     int
	Arc    Arc
	TStart int64
	TEnd   int64
}

// Instance is a ring-scheduling input: C is the ring circumference, G the
// grooming factor.
type Instance struct {
	C    int64
	G    int
	Jobs []Job
}

// Validate reports the first structural problem.
func (in Instance) Validate() error {
	if in.C < 1 {
		return fmt.Errorf("ring: circumference %d < 1", in.C)
	}
	if in.G < 1 {
		return fmt.Errorf("ring: grooming factor %d < 1", in.G)
	}
	for i, j := range in.Jobs {
		if j.Arc.Start < 0 || j.Arc.Start >= in.C {
			return fmt.Errorf("ring: job %d arc start %d outside [0,%d)", i, j.Arc.Start, in.C)
		}
		if j.Arc.Length < 1 || j.Arc.Length > in.C {
			return fmt.Errorf("ring: job %d arc length %d outside [1,%d]", i, j.Arc.Length, in.C)
		}
		if j.TEnd <= j.TStart {
			return fmt.Errorf("ring: job %d has empty time interval", i)
		}
	}
	return nil
}

// unroll converts a job into 1 or 2 plain rectangles over the cut-open
// ring: dimension 1 is ring position in [0, C), dimension 2 is time.
func (in Instance) unroll(j Job) []rect.Rect {
	end := j.Arc.Start + j.Arc.Length
	if end <= in.C {
		return []rect.Rect{rect.New(j.Arc.Start, end, j.TStart, j.TEnd)}
	}
	return []rect.Rect{
		rect.New(j.Arc.Start, in.C, j.TStart, j.TEnd),
		rect.New(0, end-in.C, j.TStart, j.TEnd),
	}
}

// Overlaps reports whether two jobs share a (ring-position, time) point of
// positive measure.
func (in Instance) Overlaps(a, b Job) bool {
	for _, ra := range in.unroll(a) {
		for _, rb := range in.unroll(b) {
			if ra.Overlaps(rb) {
				return true
			}
		}
	}
	return false
}

// Schedule assigns ring jobs to machines (regenerator sets).
type Schedule struct {
	Instance Instance
	Machine  []int
}

// Cost returns the total busy cylinder area over machines.
func (s Schedule) Cost() int64 {
	groups := map[int][]rect.Rect{}
	for i, m := range s.Machine {
		groups[m] = append(groups[m], s.Instance.unroll(s.Instance.Jobs[i])...)
	}
	var total int64
	for _, rs := range groups {
		total += rect.UnionArea(rs)
	}
	return total
}

// Machines returns the number of machines used.
func (s Schedule) Machines() int {
	seen := map[int]bool{}
	for _, m := range s.Machine {
		seen[m] = true
	}
	return len(seen)
}

// Validate checks capacity: no machine may carry more than G overlapping
// jobs at any (position, time) point.
func (s Schedule) Validate() error {
	if len(s.Machine) != len(s.Instance.Jobs) {
		return fmt.Errorf("ring: schedule covers %d jobs, instance has %d", len(s.Machine), len(s.Instance.Jobs))
	}
	groups := map[int][]int{}
	for i, m := range s.Machine {
		if m < 0 {
			return fmt.Errorf("ring: job %d unassigned", i)
		}
		groups[m] = append(groups[m], i)
	}
	for m, members := range groups {
		var rs []rect.Rect
		for _, i := range members {
			rs = append(rs, s.Instance.unroll(s.Instance.Jobs[i])...)
		}
		// Unrolling splits single jobs in two, but the two pieces never
		// overlap each other, so rectangle concurrency equals job
		// concurrency.
		if c := rect.MaxConcurrency(rs); c > s.Instance.G {
			return fmt.Errorf("ring: machine %d concurrency %d > g = %d", m, c, s.Instance.G)
		}
	}
	return nil
}

// TotalArea returns the 2-D length bound Σ arc·duration.
func (in Instance) TotalArea() int64 {
	var total int64
	for _, j := range in.Jobs {
		total += j.Arc.Length * (j.TEnd - j.TStart)
	}
	return total
}

// SpanArea returns the measure of the union of all jobs on the cylinder.
func (in Instance) SpanArea() int64 {
	var rs []rect.Rect
	for _, j := range in.Jobs {
		rs = append(rs, in.unroll(j)...)
	}
	return rect.UnionArea(rs)
}

// LowerBound returns max(ceil(area/g), span area) — Observation 2.1 on the
// cylinder.
func (in Instance) LowerBound() int64 {
	g := int64(in.G)
	pb := (in.TotalArea() + g - 1) / g
	if sp := in.SpanArea(); sp > pb {
		return sp
	}
	return pb
}

// FirstFit runs Algorithm 3 on the ring: jobs sorted by non-increasing
// time length, first thread of first machine with no cylinder overlap.
func FirstFit(in Instance) Schedule {
	n := len(in.Jobs)
	s := Schedule{Instance: in, Machine: make([]int, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := in.Jobs[order[a]].TEnd - in.Jobs[order[a]].TStart
		db := in.Jobs[order[b]].TEnd - in.Jobs[order[b]].TStart
		return da > db
	})

	var machines [][][]int
	fits := func(thread []int, p int) bool {
		for _, q := range thread {
			if in.Overlaps(in.Jobs[q], in.Jobs[p]) {
				return false
			}
		}
		return true
	}
	for _, p := range order {
		placed := false
		for m := 0; m < len(machines) && !placed; m++ {
			for t := 0; t < len(machines[m]) && !placed; t++ {
				if fits(machines[m][t], p) {
					machines[m][t] = append(machines[m][t], p)
					s.Machine[p] = m
					placed = true
				}
			}
			if !placed && len(machines[m]) < in.G {
				machines[m] = append(machines[m], []int{p})
				s.Machine[p] = m
				placed = true
			}
		}
		if !placed {
			machines = append(machines, [][]int{{p}})
			s.Machine[p] = len(machines) - 1
		}
	}
	return s
}

// BucketFirstFit buckets jobs by arc length with ratio ≤ beta per bucket
// and runs FirstFit per bucket on fresh machines — Theorem 3.3 adapted to
// the ring (the lemma it relies on is topology-independent, see Section 5).
func BucketFirstFit(in Instance, beta float64) (Schedule, error) {
	if beta <= 1 {
		return Schedule{}, fmt.Errorf("ring: BucketFirstFit needs beta > 1, got %v", beta)
	}
	n := len(in.Jobs)
	s := Schedule{Instance: in, Machine: make([]int, n)}
	if n == 0 {
		return s, nil
	}
	minLen := int64(math.MaxInt64)
	for _, j := range in.Jobs {
		if j.Arc.Length < minLen {
			minLen = j.Arc.Length
		}
	}
	buckets := map[int][]int{}
	for i, j := range in.Jobs {
		ratio := float64(j.Arc.Length) / float64(minLen)
		b := 0
		if ratio > 1 {
			b = int(math.Ceil(math.Log(ratio) / math.Log(beta)))
			if math.Pow(beta, float64(b-1)) >= ratio-1e-12 && b > 0 {
				b--
			}
		}
		buckets[b] = append(buckets[b], i)
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	base := 0
	for _, b := range keys {
		sub := Instance{C: in.C, G: in.G}
		for _, p := range buckets[b] {
			sub.Jobs = append(sub.Jobs, in.Jobs[p])
		}
		subS := FirstFit(sub)
		maxM := 0
		for k, p := range buckets[b] {
			m := subS.Machine[k]
			s.Machine[p] = base + m
			if m > maxM {
				maxM = m
			}
		}
		base += maxM + 1
	}
	return s, nil
}
