package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Instance{C: 100, G: 2, Jobs: []Job{{ID: 0, Arc: Arc{0, 50}, TStart: 0, TEnd: 10}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{C: 0, G: 1},
		{C: 10, G: 0},
		{C: 10, G: 1, Jobs: []Job{{Arc: Arc{10, 5}, TStart: 0, TEnd: 1}}}, // start out of range
		{C: 10, G: 1, Jobs: []Job{{Arc: Arc{0, 11}, TStart: 0, TEnd: 1}}}, // arc too long
		{C: 10, G: 1, Jobs: []Job{{Arc: Arc{0, 5}, TStart: 3, TEnd: 3}}},  // empty time
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: bad instance accepted", i)
		}
	}
}

func TestWrapAroundOverlap(t *testing.T) {
	in := Instance{C: 100, G: 1, Jobs: []Job{
		{ID: 0, Arc: Arc{90, 20}, TStart: 0, TEnd: 10}, // wraps: [90,100)+[0,10)
		{ID: 1, Arc: Arc{5, 10}, TStart: 5, TEnd: 15},  // [5,15)
		{ID: 2, Arc: Arc{40, 10}, TStart: 0, TEnd: 10}, // far around the ring
	}}
	if !in.Overlaps(in.Jobs[0], in.Jobs[1]) {
		t.Error("wrapped arc should overlap [5,15) in position and time")
	}
	if in.Overlaps(in.Jobs[0], in.Jobs[2]) {
		t.Error("disjoint arcs should not overlap")
	}
}

func TestWrapAroundArea(t *testing.T) {
	in := Instance{C: 100, G: 1, Jobs: []Job{
		{ID: 0, Arc: Arc{90, 20}, TStart: 0, TEnd: 10},
	}}
	if got := in.SpanArea(); got != 200 {
		t.Errorf("SpanArea = %d, want 200", got)
	}
	if got := in.TotalArea(); got != 200 {
		t.Errorf("TotalArea = %d, want 200", got)
	}
}

func TestFullCircleArc(t *testing.T) {
	in := Instance{C: 50, G: 1, Jobs: []Job{
		{ID: 0, Arc: Arc{25, 50}, TStart: 0, TEnd: 2}, // full circumference, wrapped
	}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.SpanArea(); got != 100 {
		t.Errorf("SpanArea = %d, want 100", got)
	}
}

func TestFirstFitValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := randomInstance(seed, 25, 3)
		s := FirstFit(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Cost() < in.SpanArea() || s.Cost() > in.TotalArea() {
			t.Errorf("seed %d: cost %d outside [span %d, len %d]",
				seed, s.Cost(), in.SpanArea(), in.TotalArea())
		}
	}
}

func TestFirstFitSharesNonOverlapping(t *testing.T) {
	in := Instance{C: 100, G: 1, Jobs: []Job{
		{ID: 0, Arc: Arc{0, 10}, TStart: 0, TEnd: 10},
		{ID: 1, Arc: Arc{50, 10}, TStart: 0, TEnd: 10},
	}}
	s := FirstFit(in)
	if s.Machines() != 1 {
		t.Errorf("non-overlapping ring jobs should share a thread: %d machines", s.Machines())
	}
}

func TestBucketFirstFit(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randomInstance(seed, 30, 2)
		s, err := BucketFirstFit(in, 3.3)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// g-approximation safety net (Proposition 2.1 on the cylinder).
		if s.Cost() > int64(in.G)*in.LowerBound()*2 {
			t.Errorf("seed %d: cost %d suspiciously high vs LB %d", seed, s.Cost(), in.LowerBound())
		}
	}
}

func TestBucketFirstFitRejectsBadBeta(t *testing.T) {
	if _, err := BucketFirstFit(Instance{C: 10, G: 1}, 0.9); err == nil {
		t.Fatal("accepted beta < 1")
	}
}

func randomInstance(seed int64, n, g int) Instance {
	r := rand.New(rand.NewSource(seed))
	in := Instance{C: 200, G: g}
	for i := 0; i < n; i++ {
		ts := r.Int63n(50)
		in.Jobs = append(in.Jobs, Job{
			ID:     i,
			Arc:    Arc{Start: r.Int63n(200), Length: 1 + r.Int63n(80)},
			TStart: ts,
			TEnd:   ts + 1 + r.Int63n(30),
		})
	}
	return in
}

// Property: cost of any FirstFit schedule respects the cylinder bounds,
// and unrolled concurrency never exceeds g.
func TestPropertyFirstFitBounds(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		n := int(nRaw%20) + 1
		g := int(gRaw%4) + 1
		in := randomInstance(seed, n, g)
		s := FirstFit(in)
		if s.Validate() != nil {
			return false
		}
		return s.Cost() >= in.SpanArea() && s.Cost() <= in.TotalArea()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
