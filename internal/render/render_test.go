package render

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
)

func TestGanttBasic(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 50}, [2]int64{25, 75}, [2]int64{50, 100})
	s := core.NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	out := Gantt(s, 40)
	if !strings.Contains(out, "M0") || !strings.Contains(out, "M1") {
		t.Fatalf("missing machine rows:\n%s", out)
	}
	if !strings.Contains(out, "2") {
		t.Errorf("overlap load 2 not rendered:\n%s", out)
	}
	if !strings.Contains(out, "3/3 jobs scheduled") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestGanttUnscheduled(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{20, 30})
	s := core.NewSchedule(in)
	s.Assign(0, 0)
	out := Gantt(s, 20)
	if !strings.Contains(out, "unscheduled jobs: [1]") {
		t.Errorf("unscheduled list missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10})
	s := core.NewSchedule(in)
	if out := Gantt(s, 30); !strings.Contains(out, "empty") {
		t.Errorf("empty schedule render:\n%s", out)
	}
}

func TestGanttHighLoadGlyph(t *testing.T) {
	spans := make([][2]int64, 12)
	for i := range spans {
		spans[i] = [2]int64{0, 10}
	}
	in := job.NewInstance(12, spans...)
	s := core.NewSchedule(in)
	for i := range spans {
		s.Assign(i, 0)
	}
	out := Gantt(s, 20)
	if !strings.Contains(out, "+") {
		t.Errorf("load > 9 should render '+':\n%s", out)
	}
}

func TestGanttNarrowWidthClamped(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 100})
	s := core.NewSchedule(in)
	s.Assign(0, 0)
	out := Gantt(s, 1) // clamped to 10
	if !strings.Contains(out, "1111111111") {
		t.Errorf("clamped render:\n%s", out)
	}
}
