// Package render draws ASCII Gantt charts of schedules for the CLI and
// examples: one row per machine, one column per time bucket, '#' where the
// machine runs at least one job and digits showing instantaneous load.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/interval"
)

// Gantt renders the schedule as a fixed-width chart at most width columns
// wide. Machines appear in compacted order; unscheduled jobs are listed
// below the chart. Loads above 9 render as '+'.
func Gantt(s core.Schedule, width int) string {
	if width < 10 {
		width = 10
	}
	sc := s.CompactMachines()
	machineJobs := sc.MachineJobs()
	if len(machineJobs) == 0 {
		return "(empty schedule)\n"
	}

	hull := interval.Hull(instanceIntervals(sc))
	span := hull.Len()
	if span == 0 {
		return "(zero-length horizon)\n"
	}
	cols := width
	if span < int64(cols) {
		cols = int(span)
	}

	machines := make([]int, 0, len(machineJobs))
	for m := range machineJobs {
		machines = append(machines, m)
	}
	sort.Ints(machines)

	var b strings.Builder
	fmt.Fprintf(&b, "horizon %v, %d machines, %d/%d jobs scheduled\n",
		hull, len(machines), sc.Throughput(), len(sc.Instance.Jobs))
	for _, m := range machines {
		row := make([]int, cols)
		for _, p := range machineJobs[m] {
			iv := sc.Instance.Jobs[p].Interval
			lo := colOf(iv.Start, hull, cols)
			hi := colOf(iv.End-1, hull, cols)
			for c := lo; c <= hi && c < cols; c++ {
				row[c]++
			}
		}
		fmt.Fprintf(&b, "M%-3d |", m)
		for _, load := range row {
			switch {
			case load == 0:
				b.WriteByte('.')
			case load <= 9:
				b.WriteByte(byte('0' + load))
			default:
				b.WriteByte('+')
			}
		}
		b.WriteString("|\n")
	}
	var unscheduled []int
	for i, m := range sc.Machine {
		if m == core.Unscheduled {
			unscheduled = append(unscheduled, sc.Instance.Jobs[i].ID)
		}
	}
	if len(unscheduled) > 0 {
		fmt.Fprintf(&b, "unscheduled jobs: %v\n", unscheduled)
	}
	return b.String()
}

func colOf(t int64, hull interval.Interval, cols int) int {
	span := hull.Len()
	c := int((t - hull.Start) * int64(cols) / span)
	if c < 0 {
		c = 0
	}
	if c >= cols {
		c = cols - 1
	}
	return c
}

func instanceIntervals(s core.Schedule) []interval.Interval {
	ivs := make([]interval.Interval, 0, len(s.Instance.Jobs))
	for i, m := range s.Machine {
		if m != core.Unscheduled {
			ivs = append(ivs, s.Instance.Jobs[i].Interval)
		}
	}
	return ivs
}
