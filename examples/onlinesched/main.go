// Command onlinesched demonstrates the online scheduling facade: an
// arrival stream replayed through the three strategies, the adversarial
// Ω(g) family, and a flexible-window replay.
package main

import (
	"fmt"
	"log"

	busytime "repro"
)

func main() {
	// A random arrival-ordered stream, replayed through each strategy.
	in := busytime.GenerateArrivals(7, busytime.WorkloadConfig{N: 16, G: 3, MaxTime: 120, MaxLen: 30})
	reports, err := busytime.CompareOnline(in,
		busytime.OnlineNaive(), busytime.OnlineFirstFit(), busytime.OnlineBuckets())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrival stream: n=%d g=%d offline=%d (%s) exact=%d\n",
		len(in.Jobs), in.G, reports[0].OfflineCost, reports[0].OfflineAlg, reports[0].ExactCost)
	for _, r := range reports {
		fmt.Printf("  %-16s cost=%-4d machines=%-3d ratio vs exact=%.3f\n",
			r.Strategy, r.Cost, r.Machines, r.VsExact())
	}

	// The lower-bound stream: FirstFit pays ~g times the optimum.
	adv, err := busytime.GenerateAdversarialOnline(3, 30)
	if err != nil {
		log.Fatal(err)
	}
	advReports, err := busytime.CompareOnline(adv, busytime.OnlineFirstFit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial g=3: firstfit=%d exact=%d ratio=%.3f\n",
		advReports[0].Cost, advReports[0].ExactCost, advReports[0].VsExact())

	// Flexible jobs: StartAligned tucks a unit job into the busy period a
	// long job already pays for.
	flex := []busytime.FlexJob{
		busytime.NewFlexJob(0, 0, 100, 100),
		busytime.NewFlexJob(1, 10, 200, 5),
	}
	res, err := busytime.ReplayFlexible(2, flex, busytime.StartAligned(), busytime.OnlineFirstFit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flexible: %s cost=%d machines=%d (job 1 committed to %v)\n",
		res.Strategy, res.Cost, res.MachinesOpened, res.Schedule.Instance.Jobs[1].Interval)
}
