// Command onlinesched demonstrates online scheduling through the Solver
// API and the comparison facade: an arrival stream replayed through the
// registered strategies, the adversarial Ω(g) family, and a
// flexible-window replay.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
)

func main() {
	ctx := context.Background()

	// A random arrival-ordered stream. KindOnline replays it through a
	// registered strategy; auto mode picks the strongest one.
	in := busytime.GenerateArrivals(7, busytime.WorkloadConfig{N: 16, G: 3, MaxTime: 120, MaxLen: 30})
	res, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindOnline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver online run: %s cost=%d opened=%d peak=%d\n",
		res.Algorithm, res.Cost, res.MachinesOpened, res.PeakOpen)

	// CompareOnline measures every strategy against the offline
	// algorithms and the exact oracle on the same stream.
	var strategies []busytime.OnlineStrategy
	for _, a := range busytime.Algorithms() {
		if a.Kind == busytime.KindOnline {
			strategies = append(strategies, a.NewStrategy())
		}
	}
	reports, err := busytime.CompareOnline(in, strategies...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrival stream: n=%d g=%d offline=%d (%s) exact=%d\n",
		len(in.Jobs), in.G, reports[0].OfflineCost, reports[0].OfflineAlg, reports[0].ExactCost)
	for _, r := range reports {
		fmt.Printf("  %-16s cost=%-4d machines=%-3d ratio vs exact=%.3f\n",
			r.Strategy, r.Cost, r.Machines, r.VsExact())
	}

	// The lower-bound stream: FirstFit pays ~g times the optimum.
	adv, err := busytime.GenerateAdversarialOnline(3, 30)
	if err != nil {
		log.Fatal(err)
	}
	advRes, err := busytime.NewSolver(busytime.WithAlgorithm("online-firstfit")).
		Solve(ctx, busytime.Request{Instance: adv, Kind: busytime.KindOnline})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := busytime.ExactMinBusy(adv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial g=3: firstfit=%d exact=%d ratio=%.3f\n",
		advRes.Cost, opt.Cost(), float64(advRes.Cost)/float64(opt.Cost()))

	// Flexible jobs: StartAligned tucks a unit job into the busy period a
	// long job already pays for.
	flex := []busytime.FlexJob{
		busytime.NewFlexJob(0, 0, 100, 100),
		busytime.NewFlexJob(1, 10, 200, 5),
	}
	fres, err := busytime.ReplayFlexible(2, flex, busytime.StartAligned(), busytime.OnlineFirstFit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flexible: %s cost=%d machines=%d (job 1 committed to %v)\n",
		fres.Strategy, fres.Cost, fres.MachinesOpened, fres.Schedule.Instance.Jobs[1].Interval)
}
