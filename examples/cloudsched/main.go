// Cloudsched models the cloud-computing scenario from the paper's
// introduction: clients rent machine time on identical capacity-g virtual
// machines and are billed per busy hour.
//
// Part 1 (cost minimization): a batch of tasks with fixed time windows is
// packed onto machines to minimize the total billed machine-hours,
// comparing the Solver's dispatcher against naive provisioning.
//
// Part 2 (budgeted throughput): given a fixed machine-hour budget, the
// scheduler maximizes how many tasks run, sweeping the budget to show the
// throughput/cost trade-off curve. One Solver with a default budget is
// reused; per-request budgets override it.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
)

func main() {
	const g = 4 // each VM runs up to 4 tasks concurrently
	tasks := busytime.GenerateCloud(2024, busytime.WorkloadConfig{
		N: 60, G: g, MaxTime: 480, MaxLen: 90, // an 8-hour day in minutes
	})
	ctx := context.Background()

	fmt.Println("== part 1: minimize billed machine-minutes ==")
	naive, err := busytime.NewSolver(busytime.WithAlgorithm("naive-per-job")).
		Solve(ctx, busytime.Request{Instance: tasks})
	if err != nil {
		log.Fatal(err)
	}
	packed, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: tasks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks: %d, VM capacity: %d\n", packed.N, g)
	fmt.Printf("one-VM-per-task billing: %d machine-minutes on %d VMs\n",
		naive.Cost, naive.Machines)
	fmt.Printf("packed via %s:          %d machine-minutes on %d VMs (%.1f%% saved)\n",
		packed.Algorithm, packed.Cost, packed.Machines,
		100*float64(naive.Cost-packed.Cost)/float64(naive.Cost))
	fmt.Printf("theoretical lower bound: %d machine-minutes (ratio %.3f, solved in %v)\n",
		packed.LowerBound, packed.RatioVsBound, packed.Elapsed.Round(1000))

	fmt.Println("\n== part 2: budgeted throughput ==")
	fmt.Println("budget(min)  tasks-run  cost-used")
	solver := busytime.NewSolver() // reused across the sweep
	full := packed.Cost
	for _, frac := range []int64{10, 25, 50, 75, 100} {
		budget := full * frac / 100
		res, err := solver.Solve(ctx, busytime.Request{
			Instance: tasks, Kind: busytime.KindMaxThroughput, Budget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11d  %9d  %9d\n", budget, res.Scheduled, res.Cost)
	}
}
