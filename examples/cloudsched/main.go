// Cloudsched models the cloud-computing scenario from the paper's
// introduction: clients rent machine time on identical capacity-g virtual
// machines and are billed per busy hour.
//
// Part 1 (cost minimization): a batch of tasks with fixed time windows is
// packed onto machines to minimize the total billed machine-hours,
// comparing the library's dispatcher against naive provisioning.
//
// Part 2 (budgeted throughput): given a fixed machine-hour budget, the
// scheduler maximizes how many tasks run, sweeping the budget to show the
// throughput/cost trade-off curve.
package main

import (
	"fmt"

	busytime "repro"
)

func main() {
	const g = 4 // each VM runs up to 4 tasks concurrently
	tasks := busytime.GenerateCloud(2024, busytime.WorkloadConfig{
		N: 60, G: g, MaxTime: 480, MaxLen: 90, // an 8-hour day in minutes
	})

	fmt.Println("== part 1: minimize billed machine-minutes ==")
	naive := busytime.NaivePerJob(tasks)
	packed, algorithm := busytime.MinBusy(tasks)
	fmt.Printf("tasks: %d, VM capacity: %d\n", len(tasks.Jobs), g)
	fmt.Printf("one-VM-per-task billing: %d machine-minutes on %d VMs\n",
		naive.Cost(), naive.Machines())
	fmt.Printf("packed via %s:          %d machine-minutes on %d VMs (%.1f%% saved)\n",
		algorithm, packed.Cost(), packed.Machines(),
		100*float64(naive.Cost()-packed.Cost())/float64(naive.Cost()))
	fmt.Printf("theoretical lower bound: %d machine-minutes\n", tasks.LowerBound())

	fmt.Println("\n== part 2: budgeted throughput ==")
	fmt.Println("budget(min)  tasks-run  cost-used")
	full := packed.Cost()
	for _, frac := range []int64{10, 25, 50, 75, 100} {
		budget := full * frac / 100
		s, _ := busytime.MaxThroughput(tasks, budget)
		fmt.Printf("%11d  %9d  %9d\n", budget, s.Throughput(), s.Cost())
	}
}
