// Wavelength models the wavelength-assignment application from the
// paper's introduction: connections along an optical line share fibers,
// each fiber carries at most W wavelengths, and two overlapping
// connections on one fiber need different wavelengths. Fiber-length used
// is the busy-time objective; W is the machine capacity g.
//
// The example assigns a connection set to fibers with a local-search
// Solver, then explores the budgeted variant (how many connections fit
// on a fixed amount of lit fiber) and the Section 5 ring-network
// extension where connections are arcs of a metro ring occupied for a
// time window.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
	"repro/internal/topology/ring"
)

func main() {
	const wavelengths = 8 // W: wavelengths per fiber
	ctx := context.Background()

	fmt.Println("== line network: fiber minimization ==")
	conns := busytime.GenerateLightpaths(21, busytime.WorkloadConfig{
		N: 120, G: wavelengths, MaxTime: 2000, MaxLen: 400,
	})
	plain, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: conns})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connections: %d, W = %d\n", plain.N, wavelengths)
	fmt.Printf("lit fiber via %s: %d km on %d fibers (span bound %d km)\n",
		plain.Algorithm, plain.Cost, plain.Machines, conns.Span())

	// WithLocalSearch hill-climbs the schedule after dispatch.
	improved, err := busytime.NewSolver(busytime.WithLocalSearch(0)).
		Solve(ctx, busytime.Request{Instance: conns})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after local search (%s): %d km (saved %d)\n",
		improved.Algorithm, improved.Cost, plain.Cost-improved.Cost)

	fmt.Println("\n== budgeted admission: connections per lit-fiber budget ==")
	fmt.Println("budget(km)  admitted")
	solver := busytime.NewSolver()
	for _, frac := range []int64{25, 50, 75, 100} {
		budget := improved.Cost * frac / 100
		res, err := solver.Solve(ctx, busytime.Request{
			Instance: conns, Kind: busytime.KindMaxThroughput, Budget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %8d\n", budget, res.Scheduled)
	}

	fmt.Println("\n== metro ring (Section 5 extension) ==")
	metro := ring.Instance{C: 360, G: 4}
	for i := 0; i < 30; i++ {
		v := int64(i)
		start := (v * 47) % 360
		metro.Jobs = append(metro.Jobs, ring.Job{
			ID:     i,
			Arc:    ring.Arc{Start: start, Length: 30 + (v*13)%90},
			TStart: (v * 7) % 60,
			TEnd:   (v*7)%60 + 20 + (v*11)%40,
		})
	}
	if err := metro.Validate(); err != nil {
		panic(err)
	}
	rs := ring.FirstFit(metro)
	if err := rs.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("ring connections: %d, grooming %d\n", len(metro.Jobs), metro.G)
	fmt.Printf("busy arc-time: %d (lower bound %d) on %d regenerator groups\n",
		rs.Cost(), metro.LowerBound(), rs.Machines())
}
