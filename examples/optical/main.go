// Optical models the regenerator-placement application from the paper's
// introduction: lightpaths along a line-topology WDM network need
// regenerators on every segment they traverse, and a regenerator can be
// shared by at most g lightpaths (traffic grooming). Regenerator cost is
// proportional to the total length of fiber kept "busy" — exactly the
// busy-time objective, with network position playing the role of time.
//
// The example grooms a hub-and-spoke request pattern through the Solver,
// then demonstrates the tree-topology extension of Section 5 on an
// access-network tree.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
	"repro/internal/topology/tree"
)

func main() {
	const groom = 4 // grooming factor g
	requests := busytime.GenerateLightpaths(7, busytime.WorkloadConfig{
		N: 40, G: groom, MaxTime: 1000, MaxLen: 200, // a 1000 km line network
	})
	ctx := context.Background()

	fmt.Println("== line network (core busy-time model) ==")
	naive, err := busytime.NewSolver(busytime.WithAlgorithm("naive-per-job")).
		Solve(ctx, busytime.Request{Instance: requests})
	if err != nil {
		log.Fatal(err)
	}
	groomed, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: requests})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lightpaths: %d, grooming factor: %d\n", groomed.N, groom)
	fmt.Printf("ungroomed regenerator cost: %d km\n", naive.Cost)
	fmt.Printf("groomed via %s: %d km (%d wavelength groups)\n",
		groomed.Algorithm, groomed.Cost, groomed.Machines)
	fmt.Printf("fiber span lower bound: %d km (achieved ratio %.3f)\n",
		requests.Span(), groomed.RatioVsBound)

	fmt.Println("\n== access tree (Section 5 extension) ==")
	// A small access tree: node 0 is the central office; two feeder edges
	// lead to splitters, each serving leaf buildings.
	//
	//            0
	//          /   \
	//       (10)   (15)
	//        1       2
	//       / \     / \
	//     (3) (4) (5) (6)
	//     3    4  5    6
	tr, err := tree.New(7, []tree.Edge{
		{U: 0, V: 1, Length: 10},
		{U: 0, V: 2, Length: 15},
		{U: 1, V: 3, Length: 3},
		{U: 1, V: 4, Length: 4},
		{U: 2, V: 5, Length: 5},
		{U: 2, V: 6, Length: 6},
	})
	if err != nil {
		panic(err)
	}
	// All requests emanate from the central office — a laminar family, the
	// tree analogue of a one-sided instance, where the greedy is optimal.
	reqs := []tree.Request{
		{ID: 0, Path: tr.PathBetween(0, 3)}, // length 13
		{ID: 1, Path: tr.PathBetween(0, 3)},
		{ID: 2, Path: tr.PathBetween(0, 4)}, // length 14
		{ID: 3, Path: tr.PathBetween(0, 1)}, // length 10
		{ID: 4, Path: tr.PathBetween(0, 6)}, // length 21
		{ID: 5, Path: tr.PathBetween(0, 5)}, // length 20
		{ID: 6, Path: tr.PathBetween(0, 2)}, // length 15
	}
	asg := tree.GreedyGroom(reqs, 2)
	fmt.Printf("tree requests: %d, groom factor 2\n", len(reqs))
	fmt.Printf("regenerator cost: %d km across %d groups\n", asg.Cost, len(asg.Sets))
	for i, set := range asg.Sets {
		fmt.Printf("  group %d: requests %v\n", i, set)
	}
}
