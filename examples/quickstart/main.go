// Quickstart: schedule a handful of interval jobs on capacity-2 machines,
// minimizing total busy time, then re-solve under a busy-time budget.
package main

import (
	"fmt"

	busytime "repro"
)

func main() {
	// Four jobs given as [start, end) intervals; machines run at most
	// g = 2 jobs at a time.
	in := busytime.NewInstance(2,
		[2]int64{0, 10},
		[2]int64{5, 15},
		[2]int64{8, 20},
		[2]int64{12, 25},
	)

	// MinBusy: schedule everything, minimize total machine busy time.
	s, algorithm := busytime.MinBusy(in)
	fmt.Printf("class: %v\n", busytime.Classify(in.Jobs))
	fmt.Printf("algorithm: %s\n", algorithm)
	fmt.Printf("busy time: %d (lower bound %d, one-machine-per-job %d)\n",
		s.Cost(), in.LowerBound(), in.TotalLen())
	for machine, jobs := range s.MachineJobs() {
		fmt.Printf("  machine %d runs jobs %v\n", machine, jobs)
	}

	// MaxThroughput: a busy-time budget of 20 — how many jobs fit?
	budget := int64(20)
	partial, algorithm := busytime.MaxThroughput(in, budget)
	fmt.Printf("with budget %d: %d of %d jobs scheduled via %s (cost %d)\n",
		budget, partial.Throughput(), len(in.Jobs), algorithm, partial.Cost())
}
