// Quickstart: schedule a handful of interval jobs on capacity-2 machines
// through the Solver API, minimizing total busy time, then re-solve under
// a busy-time budget.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
)

func main() {
	// Four jobs given as [start, end) intervals; machines run at most
	// g = 2 jobs at a time.
	in := busytime.NewInstance(2,
		[2]int64{0, 10},
		[2]int64{5, 15},
		[2]int64{8, 20},
		[2]int64{12, 25},
	)
	ctx := context.Background()
	solver := busytime.NewSolver()

	// MinBusy: schedule everything, minimize total machine busy time.
	// The Result carries the schedule plus the algorithm used, the
	// detected class, the lower bound, and a feasibility certificate.
	res, err := solver.Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class: %v\n", res.Class)
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("busy time: %d (lower bound %d, one-machine-per-job %d, ratio-vs-LB %.3f)\n",
		res.Cost, res.LowerBound, in.TotalLen(), res.RatioVsBound)
	for machine, jobs := range res.Schedule.MachineJobs() {
		fmt.Printf("  machine %d runs jobs %v\n", machine, jobs)
	}
	if err := res.Certificate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("certificate: schedule is valid and within bounds")

	// MaxThroughput: a busy-time budget of 20 — how many jobs fit?
	partial, err := solver.Solve(ctx, busytime.Request{
		Instance: in, Kind: busytime.KindMaxThroughput, Budget: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with budget %d: %d of %d jobs scheduled via %s (cost %d)\n",
		partial.Budget, partial.Scheduled, partial.N, partial.Algorithm, partial.Cost)
}
