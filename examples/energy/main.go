// Energy models the energy-aware cluster scheduling application: machine
// busy time is energy drawn, so minimizing total busy time across the
// cluster minimizes the energy bill. The example sweeps the machine
// capacity g to show how denser consolidation (larger g) reduces energy,
// approaching the span lower bound, and cross-checks small instances
// against the exact oracle via WithExactThreshold.
//
// It also exercises the two-dimensional variant: nightly batch jobs that
// run for a contiguous range of days in a contiguous daily time window
// (Section 3.4), scheduled through the 2-D Solver kind.
package main

import (
	"context"
	"fmt"
	"log"

	busytime "repro"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/power"
)

func main() {
	ctx := context.Background()
	solver := busytime.NewSolver()

	fmt.Println("== consolidation sweep: energy vs capacity ==")
	fmt.Println("g   energy  machines  lower-bound  algorithm")
	for _, g := range []int{1, 2, 3, 4, 6, 8} {
		jobs := busytime.GenerateGeneral(11, busytime.WorkloadConfig{
			N: 80, G: g, MaxTime: 600, MaxLen: 120,
		})
		res, err := solver.Solve(ctx, busytime.Request{Instance: jobs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %6d  %8d  %11d  %s\n",
			g, res.Cost, res.Machines, res.LowerBound, res.Algorithm)
	}

	fmt.Println("\n== oracle check on a small instance ==")
	small := busytime.GenerateGeneral(3, busytime.WorkloadConfig{
		N: 12, G: 3, MaxTime: 100, MaxLen: 40,
	})
	heuristic, err := solver.Solve(ctx, busytime.Request{Instance: small})
	if err != nil {
		log.Fatal(err)
	}
	// WithExactThreshold routes instances this small to the subset-DP
	// oracle, so the same Solve call returns the true optimum.
	opt, err := busytime.NewSolver(busytime.WithExactThreshold(12)).
		Solve(ctx, busytime.Request{Instance: small})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heuristic (%s): %d, exact optimum (%s): %d, ratio %.3f (guarantee: ≤ %d)\n",
		heuristic.Algorithm, heuristic.Cost, opt.Algorithm, opt.Cost,
		float64(heuristic.Cost)/float64(opt.Cost), small.G)

	fmt.Println("\n== 2-D periodic batch jobs (day × hour rectangles) ==")
	batch := busytime.GenerateBoundedGammaRects(5, busytime.WorkloadConfig{
		N: 50, G: 4, MaxTime: 200, MaxLen: 60,
	}, 4)
	ff, err := busytime.NewSolver(busytime.WithAlgorithm("first-fit-2d")).
		Solve(ctx, busytime.Request{Rect: &batch})
	if err != nil {
		log.Fatal(err)
	}
	bucketed, err := solver.Solve(ctx, busytime.Request{Rect: &batch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs: %d, capacity: %d\n", len(batch.Jobs), batch.G)
	fmt.Printf("FirstFit2D energy:      %d (machines %d)\n", ff.Cost, ff.Machines)
	fmt.Printf("BucketFirstFit energy:  %d (machines %d)\n", bucketed.Cost, bucketed.Machines)
	fmt.Printf("area lower bound:       %d\n", bucketed.LowerBound)

	// Section 5 future-work extensions, implemented in internal/power and
	// internal/dvs.
	fmt.Println("\n== wake-cost analysis (Section 5: sleep states) ==")
	jobs := busytime.GenerateGeneral(11, busytime.WorkloadConfig{
		N: 80, G: 4, MaxTime: 600, MaxLen: 120,
	})
	sched, err := solver.Solve(ctx, busytime.Request{Instance: jobs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wake-cost  busy  idle-retained  wakes  total-energy")
	for _, wake := range []int64{0, 5, 20, 80} {
		b := power.Analyze(sched.Schedule, wake)
		fmt.Printf("%9d  %4d  %13d  %5d  %12d\n", wake, b.Busy, b.Idle, b.Wakes, b.Energy)
	}

	fmt.Println("\n== speed scaling (Section 5: DVS, power ∝ σ^3) ==")
	solve := func(in busytime.Instance) core.Schedule {
		res, err := solver.Solve(ctx, busytime.Request{Instance: in})
		if err != nil {
			panic(err)
		}
		return res.Schedule
	}
	pts, err := dvs.Sweep(jobs, 3, []float64{1, 1.25, 1.5, 2, 3}, solve)
	if err != nil {
		panic(err)
	}
	fmt.Println("speed  busy-time  energy")
	for _, p := range pts {
		fmt.Printf("%5.2f  %9d  %7.0f\n", p.Sigma, p.Busy, p.Energy)
	}
	best, err := dvs.BestSpeed(jobs, 3, 3, 0.01, solve)
	if err != nil {
		panic(err)
	}
	fmt.Printf("energy-optimal speed: %.2f (energy %.0f)\n", best.Sigma, best.Energy)
}
