// Energy models the energy-aware cluster scheduling application: machine
// busy time is energy drawn, so minimizing total busy time across the
// cluster minimizes the energy bill. The example sweeps the machine
// capacity g to show how denser consolidation (larger g) reduces energy,
// approaching the span lower bound, and cross-checks small instances
// against the exact oracle.
//
// It also exercises the two-dimensional variant: nightly batch jobs that
// run for a contiguous range of days in a contiguous daily time window
// (Section 3.4), scheduled with BucketFirstFit.
package main

import (
	"fmt"

	busytime "repro"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/power"
)

func main() {
	fmt.Println("== consolidation sweep: energy vs capacity ==")
	fmt.Println("g   energy  machines  lower-bound  algorithm")
	for _, g := range []int{1, 2, 3, 4, 6, 8} {
		jobs := busytime.GenerateGeneral(11, busytime.WorkloadConfig{
			N: 80, G: g, MaxTime: 600, MaxLen: 120,
		})
		s, algorithm := busytime.MinBusy(jobs)
		fmt.Printf("%-3d %6d  %8d  %11d  %s\n",
			g, s.Cost(), s.Machines(), jobs.LowerBound(), algorithm)
	}

	fmt.Println("\n== oracle check on a small instance ==")
	small := busytime.GenerateGeneral(3, busytime.WorkloadConfig{
		N: 12, G: 3, MaxTime: 100, MaxLen: 40,
	})
	heuristic, algorithm := busytime.MinBusy(small)
	opt, err := busytime.ExactMinBusy(small)
	if err != nil {
		panic(err)
	}
	fmt.Printf("heuristic (%s): %d, exact optimum: %d, ratio %.3f (guarantee: ≤ %d)\n",
		algorithm, heuristic.Cost(), opt.Cost(),
		float64(heuristic.Cost())/float64(opt.Cost()), small.G)

	fmt.Println("\n== 2-D periodic batch jobs (day × hour rectangles) ==")
	batch := busytime.GenerateBoundedGammaRects(5, busytime.WorkloadConfig{
		N: 50, G: 4, MaxTime: 200, MaxLen: 60,
	}, 4)
	ff := busytime.FirstFit2D(batch)
	bucketed, err := busytime.BucketFirstFitAuto(batch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs: %d, capacity: %d\n", len(batch.Jobs), batch.G)
	fmt.Printf("FirstFit2D energy:      %d (machines %d)\n", ff.Cost(), ff.Machines())
	fmt.Printf("BucketFirstFit energy:  %d (machines %d)\n", bucketed.Cost(), bucketed.Machines())
	fmt.Printf("area lower bound:       %d\n", batch.LowerBound())

	// Section 5 future-work extensions, implemented in internal/power and
	// internal/dvs.
	fmt.Println("\n== wake-cost analysis (Section 5: sleep states) ==")
	jobs := busytime.GenerateGeneral(11, busytime.WorkloadConfig{
		N: 80, G: 4, MaxTime: 600, MaxLen: 120,
	})
	sched, _ := busytime.MinBusy(jobs)
	fmt.Println("wake-cost  busy  idle-retained  wakes  total-energy")
	for _, wake := range []int64{0, 5, 20, 80} {
		b := power.Analyze(sched, wake)
		fmt.Printf("%9d  %4d  %13d  %5d  %12d\n", wake, b.Busy, b.Idle, b.Wakes, b.Energy)
	}

	fmt.Println("\n== speed scaling (Section 5: DVS, power ∝ σ^3) ==")
	solve := func(in busytime.Instance) core.Schedule {
		s, _ := busytime.MinBusy(in)
		return s
	}
	pts, err := dvs.Sweep(jobs, 3, []float64{1, 1.25, 1.5, 2, 3}, solve)
	if err != nil {
		panic(err)
	}
	fmt.Println("speed  busy-time  energy")
	for _, p := range pts {
		fmt.Printf("%5.2f  %9d  %7.0f\n", p.Sigma, p.Busy, p.Energy)
	}
	best, err := dvs.BestSpeed(jobs, 3, 3, 0.01, solve)
	if err != nil {
		panic(err)
	}
	fmt.Printf("energy-optimal speed: %.2f (energy %.0f)\n", best.Sigma, best.Energy)
}
